//! The cross-harness trace cache: a per-process in-memory map plus an
//! optional on-disk directory (`UMI_TRACE_DIR`), both keyed by a
//! content hash of the traced program.
//!
//! The native block/access stream of a workload depends only on the
//! program (which already encodes the workload scale), never on the
//! UMI configuration driving the profilers — so one trace per
//! `(workload, scale)` serves every harness. Any validation failure on
//! a disk entry (truncation, bit rot, version skew, key collision)
//! logs one line and reports a miss: callers fall back to live
//! interpretation, which re-captures and overwrites the entry.

use crate::codec::{Fnv, FNV_OFFSET};
use crate::trace::{ExecTrace, TraceError, TraceKey, FORMAT_VERSION};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use umi_ir::Program;

/// Environment variable naming the on-disk trace cache directory.
/// Unset: the cache is in-memory only (still shared across the cells
/// of one harness process).
pub const TRACE_DIR_ENV: &str = "UMI_TRACE_DIR";

/// File extension of on-disk trace entries.
pub const TRACE_EXT: &str = "umitrace";

/// Second offset basis (first 64 bits of the same prime sequence,
/// perturbed) so the two halves of a [`TraceKey`] are independent
/// hashes of the same content stream.
const FNV_OFFSET_HI: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

fn memory() -> &'static Mutex<HashMap<TraceKey, Arc<ExecTrace>>> {
    static MEM: OnceLock<Mutex<HashMap<TraceKey, Arc<ExecTrace>>>> = OnceLock::new();
    MEM.get_or_init(|| Mutex::new(HashMap::new()))
}

struct KeyHasher {
    lo: Fnv,
    hi: Fnv,
}

impl KeyHasher {
    fn new() -> Self {
        let mut h = KeyHasher {
            lo: Fnv::with_basis(FNV_OFFSET),
            hi: Fnv::with_basis(FNV_OFFSET_HI),
        };
        // Format version participates in the key: a codec change makes
        // every old entry an automatic miss.
        h.write_u64(u64::from(FORMAT_VERSION));
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        self.lo.write(bytes);
        self.hi.write(bytes);
    }

    fn write_u64(&mut self, v: u64) {
        self.lo.write_u64(v);
        self.hi.write_u64(v);
    }

    fn finish(&self) -> TraceKey {
        TraceKey(u128::from(self.lo.finish()) | (u128::from(self.hi.finish()) << 64))
    }
}

/// Content key for a program's native execution stream: hashes the
/// program name, function table, every block's code, and the raw data
/// segments (workload scale is already baked into all of these), plus
/// the trace format version.
pub fn program_key(program: &Program) -> TraceKey {
    let mut h = KeyHasher::new();
    h.write(program.name.as_bytes());
    h.write_u64(u64::from(program.entry.0));
    let mut text = String::new();
    for f in &program.funcs {
        text.clear();
        let _ = write!(text, "{}:{}:{}", f.id.0, f.name, f.entry.0);
        h.write(text.as_bytes());
    }
    for b in &program.blocks {
        // Code is small (thousands of instructions); its Debug
        // rendering is a faithful, cheap serialization.
        text.clear();
        let _ = write!(text, "{b:?}");
        h.write(text.as_bytes());
    }
    for seg in &program.data {
        h.write_u64(seg.addr);
        h.write_u64(seg.bytes.len() as u64);
        h.write(&seg.bytes);
    }
    h.finish()
}

/// Content key for a raw (non-program) access stream, e.g. a synthetic
/// sink benchmark: the caller describes the generator exhaustively in
/// `context` (pattern name, reference count, batch size, ...).
pub fn context_key(context: &str) -> TraceKey {
    let mut h = KeyHasher::new();
    h.write(context.as_bytes());
    h.finish()
}

/// The on-disk cache directory, if `UMI_TRACE_DIR` is set (non-empty).
pub fn trace_dir() -> Option<PathBuf> {
    match std::env::var(TRACE_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

fn entry_path(dir: &Path, key: TraceKey) -> PathBuf {
    dir.join(format!("{}.{}", key.to_hex(), TRACE_EXT))
}

/// Load and validate a trace from a directory. Missing file is `None`;
/// any other failure is the typed error.
pub fn load_from_dir(dir: &Path, key: TraceKey) -> Result<Option<ExecTrace>, TraceError> {
    let path = entry_path(dir, key);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(TraceError::Io(e.to_string())),
    };
    ExecTrace::from_bytes(&bytes, Some(key)).map(Some)
}

/// Persist a trace into a directory (atomically: temp file + rename).
pub fn store_to_dir(dir: &Path, trace: &ExecTrace) -> Result<(), TraceError> {
    std::fs::create_dir_all(dir).map_err(|e| TraceError::Io(e.to_string()))?;
    let path = entry_path(dir, trace.key());
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    let io = |e: std::io::Error| TraceError::Io(e.to_string());
    std::fs::write(&tmp, trace.to_bytes()).map_err(io)?;
    std::fs::rename(&tmp, &path).map_err(io)
}

/// Look up `key`: in-memory map first, then the `UMI_TRACE_DIR` disk
/// cache. A disk entry that fails validation is reported in one line
/// on stderr and treated as a miss (the caller runs live).
pub fn fetch(key: TraceKey) -> Option<Arc<ExecTrace>> {
    if let Some(t) = memory().lock().unwrap().get(&key) {
        return Some(Arc::clone(t));
    }
    let dir = trace_dir()?;
    match load_from_dir(&dir, key) {
        Ok(Some(trace)) => {
            let arc = Arc::new(trace);
            memory().lock().unwrap().insert(key, Arc::clone(&arc));
            Some(arc)
        }
        Ok(None) => None,
        Err(err) => {
            eprintln!(
                "umi-trace: ignoring {}: {err}; falling back to live interpretation",
                entry_path(&dir, key).display()
            );
            None
        }
    }
}

/// Publish a freshly captured trace: always into the in-memory map,
/// and best-effort onto disk when `UMI_TRACE_DIR` is set.
pub fn publish(trace: ExecTrace) -> Arc<ExecTrace> {
    let arc = Arc::new(trace);
    memory().lock().unwrap().insert(arc.key(), Arc::clone(&arc));
    if let Some(dir) = trace_dir() {
        if let Err(err) = store_to_dir(&dir, &arc) {
            eprintln!(
                "umi-trace: could not persist trace to {}: {err}",
                dir.display()
            );
        }
    }
    arc
}
