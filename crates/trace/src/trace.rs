//! The trace container: an executed block/access stream in its compact
//! in-memory form, plus the checksummed on-disk serialization.
//!
//! ## Format (version 2)
//!
//! A trace file is a 48-byte header followed by a varint payload:
//!
//! ```text
//! header   := magic "UMITRACE" (8B) | version u32 LE | reserved u32 (0)
//!           | key_lo u64 LE | key_hi u64 LE
//!           | payload_len u64 LE | checksum u64 LE   (FNV-1a 64 of payload)
//! payload  := summary dict events
//! summary  := insns loads stores blocks heap_allocated accesses records   (varints)
//! dict     := count { block_id slot_count { pc_delta kind width }* }*
//! events   := { op }*  where op 0      = cycle run: varint period p, varint
//!                                       count c — the last p encoded
//!                                       records repeat c full times
//!                      op 1+2d (full)  = record for dict entry d, one
//!                                       zigzag address delta per slot
//!                      op 2+2d (sparse)= record for dict entry d: varint
//!                                       changed-slot count n, then n ×
//!                                       (varint slot index, zigzag delta);
//!                                       unlisted slots reuse the entry's
//!                                       previous delta
//! ```
//!
//! Per-block access *templates* — the `(pc, width, kind)` of every slot —
//! are static, so they live once in the dictionary; each dynamic record
//! stores only zigzag+varint address deltas against that dictionary
//! entry's previous execution, and only for the slots whose delta
//! *changed* (real blocks mix strided or stack slots, whose deltas are
//! constant for the whole loop, with data-dependent slots that jitter —
//! a sparse record pays only for the jitter). A record with no changed
//! slots carries no information beyond its entry id — and a
//! steady-state loop iteration is a *periodic sequence* of such records
//! (head, body, latch, ...). Both sides keep a window of the last
//! [`MAX_PERIOD`] encoded records; a periodic repeat stream collapses
//! into one `op 0` event per loop, costing a few bytes for millions of
//! iterations regardless of how many blocks the loop body spans.

use crate::codec;
use std::collections::VecDeque;
use std::fmt;
use umi_ir::{AccessKind, BlockId, MemAccess, Pc};
use umi_vm::{AccessSink, VmStats};

/// Trace format version; bumped on any wire-format change so stale
/// on-disk entries are rejected (and re-captured) rather than misread.
pub const FORMAT_VERSION: u32 = 2;

/// Magic bytes opening every trace file.
pub const MAGIC: [u8; 8] = *b"UMITRACE";

/// Longest cycle (in records) the run encoder will match. Loop bodies
/// spanning more blocks than this still compress — every record whose
/// deltas repeat costs its explicit bytes, which are small — they just
/// don't collapse into `op 0` runs.
pub const MAX_PERIOD: usize = 16;

const HEADER_LEN: usize = 48;

/// Content key identifying what a trace is a trace *of* (see
/// [`crate::store::program_key`]). Two independent FNV-1a 64 passes over
/// the program content; collisions are vanishingly unlikely at our
/// scale (tens of workloads).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceKey(pub u128);

impl TraceKey {
    /// Filesystem-friendly rendering (32 hex digits).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

/// Why a trace file was rejected. Every variant is survivable: callers
/// fall back to live interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Fewer bytes than the structure demands.
    Truncated {
        /// Bytes needed to make progress.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The file does not open with [`MAGIC`].
    BadMagic,
    /// Written by a different format version.
    VersionSkew {
        /// Version stamped in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The header's content key is not the one the caller asked for.
    KeyMismatch,
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// Structurally invalid payload (bad varint, impossible dictionary
    /// reference, event stream disagreeing with the summary, ...).
    Malformed(&'static str),
    /// The file could not be read at all.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated { expected, got } => {
                write!(f, "truncated trace: need {expected} bytes, have {got}")
            }
            TraceError::BadMagic => write!(f, "not a UMI trace (bad magic)"),
            TraceError::VersionSkew { found, expected } => {
                write!(f, "trace format version {found}, expected {expected}")
            }
            TraceError::KeyMismatch => write!(f, "trace content key mismatch"),
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: header {stored:#018x}, payload {computed:#018x}"
            ),
            TraceError::Malformed(what) => write!(f, "malformed trace payload: {what}"),
            TraceError::Io(err) => write!(f, "trace io error: {err}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// One static access slot of a block: everything about the access
/// except its address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotTemplate {
    /// Issuing instruction.
    pub pc: Pc,
    /// Access width in bytes.
    pub width: u8,
    /// Load / store / prefetch.
    pub kind: AccessKind,
}

/// A dictionary entry: one block's access template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DictEntry {
    /// The block this template belongs to (synthetic in raw streams).
    pub block: BlockId,
    /// Static access slots, in issue order.
    pub slots: Vec<SlotTemplate>,
}

impl DictEntry {
    /// Demand loads per execution of this template.
    pub fn n_loads(&self) -> u32 {
        self.slots
            .iter()
            .filter(|s| s.kind == AccessKind::Load)
            .count() as u32
    }

    /// Stores per execution of this template.
    pub fn n_stores(&self) -> u32 {
        self.slots
            .iter()
            .filter(|s| s.kind == AccessKind::Store)
            .count() as u32
    }
}

/// Totals recorded at capture time; replay asserts against them and
/// sources the dynamic-only `heap_allocated` from here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Final VM statistics of the captured run.
    pub stats: VmStats,
    /// Total dynamic accesses (including prefetches).
    pub accesses: u64,
    /// Dynamic block records (= executed blocks for program traces).
    pub records: u64,
}

/// A captured execution stream: block dictionary plus the encoded
/// event bytes. Immutable once built; shared across consumers via
/// `Arc` and replayed any number of times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecTrace {
    pub(crate) key: TraceKey,
    pub(crate) dict: Vec<DictEntry>,
    pub(crate) events: Vec<u8>,
    pub(crate) summary: TraceSummary,
}

/// The issue names this role explicitly: the decoded trace doubles as
/// its own reader.
pub type TraceReader = ExecTrace;

impl ExecTrace {
    pub(crate) fn new(
        key: TraceKey,
        dict: Vec<DictEntry>,
        events: Vec<u8>,
        summary: TraceSummary,
    ) -> Self {
        ExecTrace {
            key,
            dict,
            events,
            summary,
        }
    }

    /// The content key this trace was captured under.
    pub fn key(&self) -> TraceKey {
        self.key
    }

    /// Capture-time totals.
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }

    /// The block-template dictionary.
    pub fn dict(&self) -> &[DictEntry] {
        &self.dict
    }

    /// Encoded event bytes (diagnostics: compression accounting).
    pub fn event_bytes(&self) -> usize {
        self.events.len()
    }

    /// Drive `sink` with the recorded access stream, one `access_batch`
    /// per block record — exactly the chunking a live `Vm` run delivers.
    /// Returns the capture-time summary.
    pub fn replay_into<S: AccessSink>(&self, sink: &mut S) -> TraceSummary {
        let mut st = EventState::new(&self.dict);
        // One prebuilt template buffer per dictionary entry: the
        // (pc, width, kind) fields never change between records of the
        // same entry, so each record only patches addresses.
        let mut bufs: Vec<Vec<MemAccess>> = self
            .dict
            .iter()
            .map(|entry| {
                entry
                    .slots
                    .iter()
                    .map(|slot| MemAccess {
                        pc: slot.pc,
                        addr: 0,
                        width: slot.width,
                        kind: slot.kind,
                    })
                    .collect()
            })
            .collect();
        while let Some(d) = st
            .next_record(&self.events)
            .expect("trace payload corrupt despite checksum")
        {
            let buf = &mut bufs[d];
            for (a, &addr) in buf.iter_mut().zip(st.addrs(d)) {
                a.addr = addr;
            }
            if !buf.is_empty() {
                sink.access_batch(buf);
            }
        }
        self.summary
    }

    /// Serialize to the checksummed on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.events.len());
        let s = &self.summary;
        codec::write_varint(&mut payload, s.stats.insns);
        codec::write_varint(&mut payload, s.stats.loads);
        codec::write_varint(&mut payload, s.stats.stores);
        codec::write_varint(&mut payload, s.stats.blocks);
        codec::write_varint(&mut payload, s.stats.heap_allocated);
        codec::write_varint(&mut payload, s.accesses);
        codec::write_varint(&mut payload, s.records);
        codec::write_varint(&mut payload, self.dict.len() as u64);
        for entry in &self.dict {
            codec::write_varint(&mut payload, u64::from(entry.block.0));
            codec::write_varint(&mut payload, entry.slots.len() as u64);
            let mut prev_pc = 0u64;
            for slot in &entry.slots {
                codec::write_signed(&mut payload, slot.pc.0.wrapping_sub(prev_pc) as i64);
                prev_pc = slot.pc.0;
                payload.push(match slot.kind {
                    AccessKind::Load => 0,
                    AccessKind::Store => 1,
                    AccessKind::Prefetch => 2,
                });
                payload.push(slot.width);
            }
        }
        payload.extend_from_slice(&self.events);

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(self.key.0 as u64).to_le_bytes());
        out.extend_from_slice(&((self.key.0 >> 64) as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&codec::fnv64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parse and fully validate a serialized trace. `expected_key`
    /// (when given) must match the header key. The entire event stream
    /// is walked once here so that replay can never fault on bytes a
    /// (correct) checksum let through.
    pub fn from_bytes(bytes: &[u8], expected_key: Option<TraceKey>) -> Result<Self, TraceError> {
        if bytes.len() < HEADER_LEN {
            return Err(TraceError::Truncated {
                expected: HEADER_LEN,
                got: bytes.len(),
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let word32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let word64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let version = word32(8);
        if version != FORMAT_VERSION {
            return Err(TraceError::VersionSkew {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let key = TraceKey(u128::from(word64(16)) | (u128::from(word64(24)) << 64));
        if let Some(want) = expected_key {
            if key != want {
                return Err(TraceError::KeyMismatch);
            }
        }
        let payload_len = word64(32) as usize;
        if bytes.len() < HEADER_LEN + payload_len {
            return Err(TraceError::Truncated {
                expected: HEADER_LEN + payload_len,
                got: bytes.len(),
            });
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
        let stored = word64(40);
        let computed = codec::fnv64(payload);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }

        let mut pos = 0usize;
        let mut next = || codec::read_varint(payload, &mut pos);
        let summary = TraceSummary {
            stats: VmStats {
                insns: next()?,
                loads: next()?,
                stores: next()?,
                blocks: next()?,
                heap_allocated: next()?,
            },
            accesses: next()?,
            records: next()?,
        };
        let dict_len = codec::read_varint(payload, &mut pos)?;
        if dict_len > u64::from(u32::MAX) {
            return Err(TraceError::Malformed("dictionary too large"));
        }
        let mut dict = Vec::with_capacity(dict_len as usize);
        for _ in 0..dict_len {
            let block = codec::read_varint(payload, &mut pos)?;
            if block > u64::from(u32::MAX) {
                return Err(TraceError::Malformed("block id overflows u32"));
            }
            let slot_count = codec::read_varint(payload, &mut pos)?;
            if slot_count > 1 << 20 {
                return Err(TraceError::Malformed("implausible slot count"));
            }
            let mut slots = Vec::with_capacity(slot_count as usize);
            let mut prev_pc = 0u64;
            for _ in 0..slot_count {
                let delta = codec::read_signed(payload, &mut pos)?;
                let pc = prev_pc.wrapping_add(delta as u64);
                prev_pc = pc;
                let kind_byte = *payload.get(pos).ok_or(TraceError::Truncated {
                    expected: pos + 2,
                    got: payload.len(),
                })?;
                let width = *payload.get(pos + 1).ok_or(TraceError::Truncated {
                    expected: pos + 2,
                    got: payload.len(),
                })?;
                pos += 2;
                let kind = match kind_byte {
                    0 => AccessKind::Load,
                    1 => AccessKind::Store,
                    2 => AccessKind::Prefetch,
                    _ => return Err(TraceError::Malformed("unknown access kind")),
                };
                slots.push(SlotTemplate {
                    pc: Pc(pc),
                    width,
                    kind,
                });
            }
            dict.push(DictEntry {
                block: BlockId(block as u32),
                slots,
            });
        }
        let events = payload[pos..].to_vec();

        // Walk the event *ops* once — O(explicit records + runs), not
        // O(dynamic records) — validating structure and totals. After
        // this, every decode during replay is infallible.
        let mut tail: VecDeque<usize> = VecDeque::with_capacity(MAX_PERIOD);
        let (mut records, mut accesses) = (0u64, 0u64);
        let mut epos = 0usize;
        while epos < events.len() {
            let op = codec::read_varint(&events, &mut epos)?;
            if op >= 1 {
                let d = ((op - 1) >> 1) as usize;
                if d >= dict.len() {
                    return Err(TraceError::Malformed(
                        "record references unknown dict entry",
                    ));
                }
                let slots = dict[d].slots.len() as u64;
                if op & 1 == 1 {
                    for _ in 0..slots {
                        codec::skip_varint(&events, &mut epos)?;
                    }
                } else {
                    let n = codec::read_varint(&events, &mut epos)?;
                    for _ in 0..n {
                        let i = codec::read_varint(&events, &mut epos)?;
                        if i >= slots {
                            return Err(TraceError::Malformed("sparse slot out of range"));
                        }
                        codec::skip_varint(&events, &mut epos)?;
                    }
                }
                records += 1;
                accesses = accesses
                    .checked_add(slots)
                    .ok_or(TraceError::Malformed("access count overflows u64"))?;
                if tail.len() == MAX_PERIOD {
                    tail.pop_front();
                }
                tail.push_back(d);
            } else {
                let p = codec::read_varint(&events, &mut epos)?;
                let c = codec::read_varint(&events, &mut epos)?;
                if p == 0 || p > tail.len().min(MAX_PERIOD) as u64 {
                    return Err(TraceError::Malformed("run period exceeds record window"));
                }
                if c == 0 {
                    return Err(TraceError::Malformed("empty run"));
                }
                let p = p as usize;
                let cycle_accesses: u64 = tail
                    .iter()
                    .skip(tail.len() - p)
                    .map(|&d| dict[d].slots.len() as u64)
                    .sum();
                records = (p as u64)
                    .checked_mul(c)
                    .and_then(|n| records.checked_add(n))
                    .ok_or(TraceError::Malformed("record count overflows u64"))?;
                accesses = c
                    .checked_mul(cycle_accesses)
                    .and_then(|n| accesses.checked_add(n))
                    .ok_or(TraceError::Malformed("access count overflows u64"))?;
            }
        }
        if records != summary.records || accesses != summary.accesses {
            return Err(TraceError::Malformed("event stream disagrees with summary"));
        }

        Ok(ExecTrace {
            key,
            dict,
            events,
            summary,
        })
    }
}

/// Decode-side cursor state over an event byte stream. Owns only
/// positions and per-dictionary address/delta state so it can live
/// next to (not borrow from) the trace that owns the bytes.
#[derive(Clone, Debug)]
pub(crate) struct EventState {
    pos: usize,
    /// Per dictionary entry: addresses of its most recent record.
    addrs: Vec<Vec<u64>>,
    /// Per dictionary entry: deltas of its most recent record.
    deltas: Vec<Vec<i64>>,
    /// Entry ids of the last `MAX_PERIOD` explicitly decoded records —
    /// the window `op 0` cycle runs resolve against. Run-expanded
    /// records never enter it (the writer mirrors this exactly).
    tail: VecDeque<usize>,
    /// Cycle of the active run (empty = none).
    cycle: Vec<usize>,
    /// Next position within `cycle`.
    cycle_pos: usize,
    /// Records remaining in the active run (`period * count` total).
    run_left: u64,
}

impl EventState {
    pub(crate) fn new(dict: &[DictEntry]) -> Self {
        EventState {
            pos: 0,
            addrs: dict.iter().map(|e| vec![0u64; e.slots.len()]).collect(),
            deltas: dict.iter().map(|e| vec![0i64; e.slots.len()]).collect(),
            tail: VecDeque::with_capacity(MAX_PERIOD),
            cycle: Vec::new(),
            cycle_pos: 0,
            run_left: 0,
        }
    }

    /// Addresses of the most recent record of dictionary entry `d`.
    pub(crate) fn addrs(&self, d: usize) -> &[u64] {
        &self.addrs[d]
    }

    /// Advance to the next dynamic record, updating that entry's
    /// address state. Returns the dictionary index, or `None` at
    /// end-of-stream.
    pub(crate) fn next_record(&mut self, events: &[u8]) -> Result<Option<usize>, TraceError> {
        if self.run_left == 0 {
            if self.pos >= events.len() {
                return Ok(None);
            }
            let op = codec::read_varint(events, &mut self.pos)?;
            if op >= 1 {
                let d = ((op - 1) >> 1) as usize;
                if d >= self.addrs.len() {
                    return Err(TraceError::Malformed(
                        "record references unknown dict entry",
                    ));
                }
                let (addrs, deltas) = (&mut self.addrs[d], &mut self.deltas[d]);
                if op & 1 == 1 {
                    // Full record: every slot delta.
                    for i in 0..addrs.len() {
                        let delta = codec::read_signed(events, &mut self.pos)?;
                        addrs[i] = addrs[i].wrapping_add(delta as u64);
                        deltas[i] = delta;
                    }
                } else {
                    // Sparse record: only the changed slots, then every
                    // slot re-advances by its (possibly updated) delta.
                    let n = codec::read_varint(events, &mut self.pos)?;
                    for _ in 0..n {
                        let i = codec::read_varint(events, &mut self.pos)? as usize;
                        if i >= deltas.len() {
                            return Err(TraceError::Malformed("sparse slot out of range"));
                        }
                        deltas[i] = codec::read_signed(events, &mut self.pos)?;
                    }
                    for (a, &dl) in addrs.iter_mut().zip(deltas.iter()) {
                        *a = a.wrapping_add(dl as u64);
                    }
                }
                if self.tail.len() == MAX_PERIOD {
                    self.tail.pop_front();
                }
                self.tail.push_back(d);
                return Ok(Some(d));
            }
            // op == 0: start a cycle run over the last `p` records.
            let p = codec::read_varint(events, &mut self.pos)?;
            let c = codec::read_varint(events, &mut self.pos)?;
            if p == 0 || p > self.tail.len().min(MAX_PERIOD) as u64 {
                return Err(TraceError::Malformed("run period exceeds record window"));
            }
            if c == 0 {
                return Err(TraceError::Malformed("empty run"));
            }
            let p = p as usize;
            self.run_left = (p as u64)
                .checked_mul(c)
                .ok_or(TraceError::Malformed("run length overflows u64"))?;
            self.cycle.clear();
            self.cycle
                .extend(self.tail.iter().skip(self.tail.len() - p));
            self.cycle_pos = 0;
        }
        // Inside a run: each entry re-advances by its recorded deltas.
        let d = self.cycle[self.cycle_pos];
        self.cycle_pos += 1;
        if self.cycle_pos == self.cycle.len() {
            self.cycle_pos = 0;
        }
        self.run_left -= 1;
        let (addrs, deltas) = (&mut self.addrs[d], &self.deltas[d]);
        for (a, &dl) in addrs.iter_mut().zip(deltas.iter()) {
            *a = a.wrapping_add(dl as u64);
        }
        Ok(Some(d))
    }
}
