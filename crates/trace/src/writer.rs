//! Capture side: builds the dictionary and the delta/RLE event stream
//! while the live run executes.

use crate::codec;
use crate::trace::{DictEntry, ExecTrace, SlotTemplate, TraceKey, TraceSummary, MAX_PERIOD};
use std::collections::{HashMap, VecDeque};
use umi_ir::{BlockId, MemAccess};
use umi_vm::{AccessSink, VmStats};

#[derive(Debug)]
struct DictBuild {
    block: BlockId,
    slots: Vec<SlotTemplate>,
    /// Addresses of this entry's most recent record.
    addrs: Vec<u64>,
    /// Deltas of this entry's most recent record.
    deltas: Vec<i64>,
}

/// Records a native execution stream into the compact trace encoding.
///
/// Two capture modes share the machinery:
///
/// * **Program mode** — the execution loop calls
///   [`record_block`](TraceWriter::record_block) once per executed
///   block with the block's access batch (the `DbiRuntime` does this
///   when a tracer is attached). Finish with
///   [`finish`](TraceWriter::finish).
/// * **Raw mode** — an [`AccessSink`] feed: batches accumulate via
///   `access`/`access_batch`; [`end_block_auto`](TraceWriter::end_block_auto)
///   closes each pseudo-block, deriving a synthetic dictionary id from
///   the batch's `(pc, width, kind)` template. Finish with
///   [`finish_raw`](TraceWriter::finish_raw).
#[derive(Debug, Default)]
pub struct TraceWriter {
    dict: Vec<DictBuild>,
    /// `block.index() -> dict index + 1` (0 = unseen), program mode.
    dict_of_block: Vec<u32>,
    /// Template -> synthetic dict index, raw mode.
    template_ids: HashMap<Vec<(u64, u8, u8)>, u32>,
    events: Vec<u8>,
    /// Accesses buffered by the sink impl until the block boundary.
    pending: Vec<MemAccess>,
    /// Entry ids of the last `MAX_PERIOD` explicitly encoded records —
    /// the window cycle runs are matched against. Run-compressed
    /// records never enter it (the decoder mirrors this exactly).
    tail: VecDeque<u32>,
    /// Active run cycle (empty = none): a snapshot of the last `p`
    /// entries of `tail` that incoming repeat records are tracking.
    cycle: Vec<u32>,
    /// Progress within the current (incomplete) cycle repetition.
    cycle_pos: usize,
    /// Completed full cycle repetitions not yet flushed.
    runs: u64,
    records: u64,
    accesses: u64,
    loads: u64,
    stores: u64,
    scratch: Vec<i64>,
}

impl TraceWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        TraceWriter::default()
    }

    /// Record one executed block and its access batch (program mode).
    /// The batch may be empty; the block-boundary event is still
    /// recorded so replay reproduces the exact block stream.
    pub fn record_block(&mut self, block: BlockId, accesses: &[MemAccess]) {
        let idx = block.index();
        if self.dict_of_block.len() <= idx {
            self.dict_of_block.resize(idx + 1, 0);
        }
        let d = match self.dict_of_block[idx] {
            0 => {
                let d = self.new_entry(block, accesses);
                self.dict_of_block[idx] = d + 1;
                d
            }
            n => n - 1,
        };
        self.emit(d, accesses);
    }

    /// Close the pending sink-fed batch against an explicit block id.
    pub fn end_block(&mut self, block: BlockId) {
        let accesses = std::mem::take(&mut self.pending);
        self.record_block(block, &accesses);
        self.pending = accesses;
        self.pending.clear();
    }

    /// Close the pending sink-fed batch as a pseudo-block whose
    /// identity is its access template (raw mode).
    pub fn end_block_auto(&mut self) {
        let key: Vec<(u64, u8, u8)> = self
            .pending
            .iter()
            .map(|a| (a.pc.0, a.width, a.kind as u8))
            .collect();
        let d = match self.template_ids.get(&key) {
            Some(&d) => d,
            None => {
                let accesses = std::mem::take(&mut self.pending);
                let d = self.new_entry(BlockId(self.dict.len() as u32), &accesses);
                self.pending = accesses;
                self.template_ids.insert(key, d);
                d
            }
        };
        let accesses = std::mem::take(&mut self.pending);
        self.emit(d, &accesses);
        self.pending = accesses;
        self.pending.clear();
    }

    fn new_entry(&mut self, block: BlockId, accesses: &[MemAccess]) -> u32 {
        let d = self.dict.len() as u32;
        self.dict.push(DictBuild {
            block,
            slots: accesses
                .iter()
                .map(|a| SlotTemplate {
                    pc: a.pc,
                    width: a.width,
                    kind: a.kind,
                })
                .collect(),
            addrs: vec![0; accesses.len()],
            deltas: vec![0; accesses.len()],
        });
        d
    }

    fn emit(&mut self, d: u32, accesses: &[MemAccess]) {
        let entry = &mut self.dict[d as usize];
        debug_assert_eq!(entry.slots.len(), accesses.len(), "template drift");
        debug_assert!(entry
            .slots
            .iter()
            .zip(accesses)
            .all(|(s, a)| s.pc == a.pc && s.width == a.width && s.kind == a.kind));
        self.records += 1;
        self.accesses += accesses.len() as u64;
        for a in accesses {
            match a.kind {
                umi_ir::AccessKind::Load => self.loads += 1,
                umi_ir::AccessKind::Store => self.stores += 1,
                umi_ir::AccessKind::Prefetch => {}
            }
        }
        self.scratch.clear();
        self.scratch.extend(
            accesses
                .iter()
                .zip(entry.addrs.iter())
                .map(|(a, &prev)| a.addr.wrapping_sub(prev) as i64),
        );
        let changed = self
            .scratch
            .iter()
            .zip(entry.deltas.iter())
            .filter(|(s, p)| s != p)
            .count();
        // A *repeat* record advances its entry by the entry's previous
        // deltas — it carries no new information beyond its entry id,
        // and a periodic sequence of repeats (a steady-state loop body,
        // even one spanning several blocks) collapses into a cycle run.
        if changed == 0 {
            for (slot, a) in entry.addrs.iter_mut().zip(accesses) {
                *slot = a.addr;
            }
            if !self.cycle.is_empty() {
                if self.cycle[self.cycle_pos] == d {
                    self.cycle_pos += 1;
                    if self.cycle_pos == self.cycle.len() {
                        self.cycle_pos = 0;
                        self.runs += 1;
                    }
                    return;
                }
                self.flush_run();
            }
            // Start a new tentative run at the smallest period that
            // makes this record a cycle continuation.
            let max_p = self.tail.len().min(MAX_PERIOD);
            if let Some(p) = (1..=max_p).find(|&p| self.tail[self.tail.len() - p] == d) {
                self.cycle.clear();
                self.cycle
                    .extend(self.tail.iter().skip(self.tail.len() - p));
                self.cycle_pos = 1 % p;
                self.runs = u64::from(p == 1);
                return;
            }
            // No window match: a no-change sparse record (two bytes).
            self.encode_repeat(d);
            return;
        }
        self.flush_run();
        let entry = &mut self.dict[d as usize];
        let n_slots = entry.deltas.len();
        // Most records change only their LCG-jitter slots; listing the
        // changed (index, delta) pairs beats re-encoding every slot as
        // soon as under half the slots moved.
        if changed * 2 < n_slots {
            codec::write_varint(&mut self.events, 2 + 2 * u64::from(d));
            codec::write_varint(&mut self.events, changed as u64);
            for (i, (&s, &p)) in self.scratch.iter().zip(entry.deltas.iter()).enumerate() {
                if s != p {
                    codec::write_varint(&mut self.events, i as u64);
                    codec::write_signed(&mut self.events, s);
                }
            }
        } else {
            codec::write_varint(&mut self.events, 1 + 2 * u64::from(d));
            for &delta in &self.scratch {
                codec::write_signed(&mut self.events, delta);
            }
        }
        entry.deltas.clear();
        entry.deltas.extend_from_slice(&self.scratch);
        for (slot, a) in entry.addrs.iter_mut().zip(accesses) {
            *slot = a.addr;
        }
        self.push_tail(d);
    }

    /// Append a no-change sparse record (two bytes for small dicts):
    /// entry `d` executed again with every slot delta unchanged, but no
    /// cycle run could absorb it.
    fn encode_repeat(&mut self, d: u32) {
        codec::write_varint(&mut self.events, 2 + 2 * u64::from(d));
        codec::write_varint(&mut self.events, 0);
        self.push_tail(d);
    }

    fn push_tail(&mut self, d: u32) {
        if self.tail.len() == MAX_PERIOD {
            self.tail.pop_front();
        }
        self.tail.push_back(d);
    }

    /// Emit the pending cycle run: completed repetitions as one
    /// `op 0, period, count` event, then the records of any partial
    /// repetition as no-change sparse records (their deltas are
    /// unchanged by construction, so late encoding is byte-faithful).
    fn flush_run(&mut self) {
        if self.cycle.is_empty() {
            return;
        }
        let runs = std::mem::take(&mut self.runs);
        if runs > 0 {
            codec::write_varint(&mut self.events, 0);
            codec::write_varint(&mut self.events, self.cycle.len() as u64);
            codec::write_varint(&mut self.events, runs);
        }
        let partial: Vec<u32> = self.cycle.drain(..).take(self.cycle_pos).collect();
        self.cycle_pos = 0;
        for d in partial {
            self.encode_repeat(d);
        }
    }

    /// Dynamic accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Seal a program-mode capture. `stats` are the finished run's VM
    /// statistics (replay reproduces them and sources `heap_allocated`
    /// from here).
    pub fn finish(mut self, key: TraceKey, stats: VmStats) -> ExecTrace {
        self.flush_run();
        debug_assert_eq!(stats.blocks, self.records, "one record per executed block");
        debug_assert_eq!(stats.loads, self.loads, "demand loads drifted from capture");
        debug_assert_eq!(stats.stores, self.stores, "stores drifted from capture");
        let summary = TraceSummary {
            stats,
            accesses: self.accesses,
            records: self.records,
        };
        self.seal(key, summary)
    }

    /// Seal a raw-mode capture; the summary is synthesized from the
    /// recorded stream (no VM ran).
    pub fn finish_raw(mut self, key: TraceKey) -> ExecTrace {
        self.flush_run();
        let summary = TraceSummary {
            stats: VmStats {
                insns: 0,
                loads: self.loads,
                stores: self.stores,
                blocks: self.records,
                heap_allocated: 0,
            },
            accesses: self.accesses,
            records: self.records,
        };
        self.seal(key, summary)
    }

    fn seal(self, key: TraceKey, summary: TraceSummary) -> ExecTrace {
        debug_assert!(self.pending.is_empty(), "unterminated sink-fed batch");
        let dict = self
            .dict
            .into_iter()
            .map(|b| DictEntry {
                block: b.block,
                slots: b.slots,
            })
            .collect();
        ExecTrace::new(key, dict, self.events, summary)
    }
}

impl AccessSink for TraceWriter {
    fn access(&mut self, a: MemAccess) {
        self.pending.push(a);
    }

    fn access_batch(&mut self, batch: &[MemAccess]) {
        self.pending.extend_from_slice(batch);
    }
}
