//! Low-level encoding primitives: LEB128 varints, zigzag signed
//! mapping, and FNV-1a hashing (used for both payload checksums and
//! content keys — no external hash dependency).

use crate::trace::TraceError;

/// Append `v` to `buf` as an LEB128 varint (7 bits per byte, little
/// endian groups, high bit = continuation).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode an LEB128 varint from `buf` at `*pos`, advancing `*pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(TraceError::Truncated {
            expected: *pos + 1,
            got: buf.len(),
        })?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(TraceError::Malformed("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Malformed("varint longer than 10 bytes"));
        }
    }
}

/// Skip one LEB128 varint without decoding its value — the validation
/// walk uses this for delta payloads whose values it does not need,
/// which is most of the event stream.
pub fn skip_varint(buf: &[u8], pos: &mut usize) -> Result<(), TraceError> {
    let start = *pos;
    loop {
        let byte = *buf.get(*pos).ok_or(TraceError::Truncated {
            expected: *pos + 1,
            got: buf.len(),
        })?;
        *pos += 1;
        // Accept and reject exactly the inputs `read_varint` does: the
        // tenth byte may only contribute the u64's top bit.
        if *pos - start == 10 && byte > 1 {
            return Err(TraceError::Malformed("varint overflows u64"));
        }
        if byte & 0x80 == 0 {
            return Ok(());
        }
        if *pos - start >= 10 {
            return Err(TraceError::Malformed("varint longer than 10 bytes"));
        }
    }
}

/// Map a signed delta onto the unsigned varint space so that small
/// magnitudes — positive *or negative* — encode in few bytes.
pub fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Convenience: append a zigzag-varint signed value.
pub fn write_signed(buf: &mut Vec<u8>, v: i64) {
    write_varint(buf, zigzag(v));
}

/// Convenience: decode a zigzag-varint signed value.
pub fn read_signed(buf: &[u8], pos: &mut usize) -> Result<i64, TraceError> {
    Ok(unzigzag(read_varint(buf, pos)?))
}

/// Incremental 64-bit FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

/// The standard FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

impl Fnv {
    /// Start a hash from an explicit offset basis (vary it to derive
    /// independent hash functions from the same byte stream).
    pub fn with_basis(basis: u64) -> Self {
        Fnv(basis)
    }

    /// Start a hash from the standard offset basis.
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorb a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &cases {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &cases {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trip_edges() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 0x7fff_ffff] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small on the wire.
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn overlong_varint_is_an_error() {
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
