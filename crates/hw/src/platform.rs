//! Platform descriptions: cache geometry and timing.

use umi_cache::{
    CacheConfig, K7_L2_HIT_CYCLES, K7_MEMORY_CYCLES, PENTIUM4_L2_HIT_CYCLES, PENTIUM4_MEMORY_CYCLES,
};

/// A simulated evaluation platform (paper §6, "Experimental Methodology").
///
/// The timing model is deliberately simple and in-order: every retired
/// instruction costs one base cycle; a demand reference additionally stalls
/// for `l2_hit_cycles` when it misses L1 and for `memory_cycles` when it
/// misses both levels. The reproduced figures are all *ratios* of running
/// times, which this model preserves.
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// Human-readable name, e.g. `"Pentium 4"`.
    pub name: &'static str,
    /// L1 data-cache geometry.
    pub l1: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Extra stall cycles for an L1-miss/L2-hit reference.
    pub l2_hit_cycles: u64,
    /// Extra stall cycles for a reference served from memory.
    pub memory_cycles: u64,
    /// Core clock in MHz (used to convert the paper's wall-clock
    /// parameters, e.g. the 10 ms sampling period, into cycles).
    pub clock_mhz: u64,
    /// Whether the platform has hardware L2 prefetchers (Pentium 4: yes,
    /// K7: "no documented hardware prefetching mechanisms").
    pub has_hw_prefetch: bool,
}

impl Platform {
    /// The paper's 3.06 GHz Intel Pentium 4: 8 KB 4-way L1D, 512 KB 8-way
    /// unified L2, 64-byte lines, adjacent-line + stride HW prefetchers.
    pub fn pentium4() -> Platform {
        Platform {
            name: "Pentium 4",
            l1: CacheConfig::pentium4_l1d(),
            l2: CacheConfig::pentium4_l2(),
            l2_hit_cycles: PENTIUM4_L2_HIT_CYCLES,
            memory_cycles: PENTIUM4_MEMORY_CYCLES,
            clock_mhz: 3060,
            has_hw_prefetch: true,
        }
    }

    /// The paper's 1.2 GHz AMD Athlon MP (K7): 64 KB 2-way L1D, 256 KB
    /// 16-way unified L2, 64-byte lines, no hardware prefetch.
    pub fn k7() -> Platform {
        Platform {
            name: "AMD K7",
            l1: CacheConfig::k7_l1d(),
            l2: CacheConfig::k7_l2(),
            l2_hit_cycles: K7_L2_HIT_CYCLES,
            memory_cycles: K7_MEMORY_CYCLES,
            clock_mhz: 1200,
            has_hw_prefetch: false,
        }
    }

    /// Cycles in `ms` milliseconds on this platform.
    pub fn ms_to_cycles(&self, ms: u64) -> u64 {
        ms * self.clock_mhz * 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platforms() {
        let p4 = Platform::pentium4();
        assert_eq!(p4.l1.capacity(), 8 << 10);
        assert_eq!(p4.l2.capacity(), 512 << 10);
        assert!(p4.has_hw_prefetch);
        let k7 = Platform::k7();
        assert_eq!(k7.l1.ways, 2);
        assert_eq!(k7.l2.capacity(), 256 << 10);
        assert!(!k7.has_hw_prefetch);
        assert!(k7.l2.capacity() < p4.l2.capacity(), "K7 L2 is half of P4's");
    }

    #[test]
    fn ms_conversion_uses_clock() {
        assert_eq!(Platform::pentium4().ms_to_cycles(10), 10 * 3060 * 1000);
        assert_eq!(Platform::k7().ms_to_cycles(1), 1_200_000);
    }
}
