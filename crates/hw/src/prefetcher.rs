//! Hardware L2 prefetchers (Pentium 4 style, paper §8).
//!
//! "It implements two prefetching algorithms for its L2 cache. They are
//! *adjacent cache line* prefetching and *stride* prefetching. The latter
//! can track up to 8 independent prefetch streams."

use umi_ir::Pc;

/// A hardware prefetch engine: observes demand references (at line
/// granularity) and proposes line addresses to install into L2.
pub trait PrefetchEngine {
    /// Observes one demand reference; pushes line addresses to prefetch
    /// into `out` (which the caller reuses across decisions — engines
    /// must append, never clear).
    ///
    /// `line_addr` is the line-aligned address, `l2_miss` whether the
    /// reference missed L2. This runs once per demand reference, so it
    /// yields into the caller's buffer instead of allocating a `Vec` per
    /// decision.
    fn observe_into(&mut self, pc: Pc, line_addr: u64, l2_miss: bool, out: &mut Vec<u64>);

    /// Convenience wrapper over [`observe_into`](Self::observe_into) that
    /// allocates: tests and one-shot callers.
    fn observe(&mut self, pc: Pc, line_addr: u64, l2_miss: bool) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(pc, line_addr, l2_miss, &mut out);
        out
    }

    /// Resets all predictor state.
    fn reset(&mut self);
}

/// Adjacent-cache-line prefetching: on an L2 demand miss, also fetch the
/// other half of the aligned 128-byte pair (the line's "buddy").
#[derive(Clone, Debug)]
pub struct AdjacentLinePrefetcher {
    line_size: u64,
}

impl AdjacentLinePrefetcher {
    /// Creates the prefetcher for the given line size.
    pub fn new(line_size: u64) -> AdjacentLinePrefetcher {
        AdjacentLinePrefetcher { line_size }
    }
}

impl PrefetchEngine for AdjacentLinePrefetcher {
    fn observe_into(&mut self, _pc: Pc, line_addr: u64, l2_miss: bool, out: &mut Vec<u64>) {
        if l2_miss {
            out.push(line_addr ^ self.line_size);
        }
    }

    fn reset(&mut self) {}
}

#[derive(Clone, Copy, Debug, Default)]
struct Stream {
    pc: Pc,
    last_line: u64,
    stride: i64,
    confidence: u8,
    lru: u64,
    valid: bool,
}

/// IP-indexed stride prefetching with a fixed number of streams (8 on the
/// Pentium 4). Two consecutive equal line-strides arm a stream; armed
/// streams prefetch `distance` strides ahead.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    streams: Vec<Stream>,
    line_size: u64,
    distance: u64,
    clock: u64,
    /// Slot of the most recently observed pc — a pure lookup memo.
    /// Demand pcs repeat in runs (loop bodies), so the stream found last
    /// time is almost always the one needed now; pc-uniqueness of valid
    /// streams makes the shortcut observationally identical to the scan.
    last_slot: usize,
}

impl StridePrefetcher {
    /// Pentium 4 configuration: 8 streams, prefetch 2 strides ahead.
    pub fn pentium4(line_size: u64) -> StridePrefetcher {
        StridePrefetcher::new(8, line_size, 2)
    }

    /// Creates a prefetcher with `streams` tracking slots and the given
    /// prefetch `distance` (in strides).
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero.
    pub fn new(streams: usize, line_size: u64, distance: u64) -> StridePrefetcher {
        assert!(streams > 0, "need at least one stream");
        StridePrefetcher {
            streams: vec![Stream::default(); streams],
            line_size,
            distance,
            clock: 0,
            last_slot: 0,
        }
    }
}

impl PrefetchEngine for StridePrefetcher {
    fn observe_into(&mut self, pc: Pc, line_addr: u64, l2_miss: bool, out: &mut Vec<u64>) {
        self.clock += 1;
        let clock = self.clock;

        let memo = &self.streams[self.last_slot];
        let found = if memo.valid && memo.pc == pc {
            Some(self.last_slot)
        } else {
            self.streams.iter().position(|s| s.valid && s.pc == pc)
        };
        if let Some(i) = found {
            self.last_slot = i;
            let s = &mut self.streams[i];
            s.lru = clock;
            let delta = line_addr as i64 - s.last_line as i64;
            s.last_line = line_addr;
            if delta == 0 {
                return; // same line; no new information
            }
            if delta == s.stride {
                s.confidence = s.confidence.saturating_add(1);
            } else {
                s.stride = delta;
                s.confidence = 1;
            }
            // Prefetches issue only on demand misses: real prefetchers
            // are trained continuously but throttle issue, which is what
            // keeps them from eliminating every streaming miss.
            if !l2_miss {
                return;
            }
            if s.confidence >= 2 {
                for k in 1..=self.distance {
                    let target = line_addr as i64 + s.stride * k as i64;
                    if target >= 0 {
                        out.push(target as u64 & !(self.line_size - 1));
                    }
                }
            }
            return;
        }

        // Allocate a new stream (reuse invalid or the least recently used).
        let slot = self
            .streams
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| if s.valid { s.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one stream");
        self.streams[slot] = Stream {
            pc,
            last_line: line_addr,
            stride: 0,
            confidence: 0,
            lru: clock,
            valid: true,
        };
        self.last_slot = slot;
    }

    fn reset(&mut self) {
        self.streams.iter_mut().for_each(|s| *s = Stream::default());
        self.clock = 0;
        self.last_slot = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_line_fetches_buddy_on_miss_only() {
        let mut p = AdjacentLinePrefetcher::new(64);
        assert_eq!(p.observe(Pc(1), 0x1000, true), vec![0x1040]);
        assert_eq!(p.observe(Pc(1), 0x1040, true), vec![0x1000]);
        assert!(p.observe(Pc(1), 0x1000, false).is_empty());
    }

    #[test]
    fn stride_arms_after_two_equal_deltas() {
        let mut p = StridePrefetcher::new(8, 64, 2);
        assert!(p.observe(Pc(1), 0x0, true).is_empty()); // allocate
        assert!(p.observe(Pc(1), 0x40, true).is_empty()); // first delta
        let out = p.observe(Pc(1), 0x80, true); // second equal delta: armed
        assert_eq!(out, vec![0xc0, 0x100]);
    }

    #[test]
    fn stride_issues_only_on_misses() {
        let mut p = StridePrefetcher::new(8, 64, 2);
        p.observe(Pc(1), 0x0, true);
        p.observe(Pc(1), 0x40, true);
        // Armed, but this access hits: training continues, no issue.
        assert!(p.observe(Pc(1), 0x80, false).is_empty());
        // The next miss issues.
        assert_eq!(p.observe(Pc(1), 0xc0, true), vec![0x100, 0x140]);
    }

    #[test]
    fn stride_rearms_on_pattern_change() {
        let mut p = StridePrefetcher::new(8, 64, 1);
        p.observe(Pc(1), 0x0, true);
        p.observe(Pc(1), 0x40, true);
        assert!(!p.observe(Pc(1), 0x80, true).is_empty());
        // Break the pattern: stride changes, confidence resets.
        assert!(p.observe(Pc(1), 0x400, true).is_empty());
        assert!(p.observe(Pc(1), 0x440, true).is_empty());
        assert_eq!(p.observe(Pc(1), 0x480, true), vec![0x4c0]);
    }

    #[test]
    fn stream_table_capacity_is_bounded() {
        // With 2 streams, a third PC evicts the least recently used.
        let mut p = StridePrefetcher::new(2, 64, 1);
        for step in 0..3u64 {
            p.observe(Pc(1), 0x1000 + step * 64, true);
            p.observe(Pc(2), 0x8000 + step * 64, true);
        }
        assert!(!p.observe(Pc(1), 0x1000 + 3 * 64, true).is_empty());
        // PC 3 evicts PC 2 (least recently used is deterministic here).
        p.observe(Pc(3), 0x20000, true);
        // PC 1 is still tracked and armed.
        assert!(!p.observe(Pc(1), 0x1000 + 4 * 64, true).is_empty());
    }

    #[test]
    fn negative_strides_prefetch_downward() {
        let mut p = StridePrefetcher::new(8, 64, 1);
        p.observe(Pc(1), 0x1000, true);
        p.observe(Pc(1), 0xfc0, true);
        assert_eq!(p.observe(Pc(1), 0xf80, true), vec![0xf40]);
    }

    #[test]
    fn reset_clears_streams() {
        let mut p = StridePrefetcher::new(8, 64, 1);
        p.observe(Pc(1), 0x0, true);
        p.observe(Pc(1), 0x40, true);
        p.reset();
        assert!(
            p.observe(Pc(1), 0x80, true).is_empty(),
            "state survived reset"
        );
    }
}
