//! Hardware L2 prefetchers (Pentium 4 style, paper §8).
//!
//! "It implements two prefetching algorithms for its L2 cache. They are
//! *adjacent cache line* prefetching and *stride* prefetching. The latter
//! can track up to 8 independent prefetch streams."

use umi_ir::Pc;

/// A hardware prefetch engine: observes demand references (at line
/// granularity) and proposes line addresses to install into L2.
pub trait PrefetchEngine {
    /// Observes one demand reference; pushes line addresses to prefetch
    /// into `out` (which the caller reuses across decisions — engines
    /// must append, never clear).
    ///
    /// `line_addr` is the line-aligned address, `l2_miss` whether the
    /// reference missed L2. This runs once per demand reference, so it
    /// yields into the caller's buffer instead of allocating a `Vec` per
    /// decision.
    fn observe_into(&mut self, pc: Pc, line_addr: u64, l2_miss: bool, out: &mut Vec<u64>);

    /// Convenience wrapper over [`observe_into`](Self::observe_into) that
    /// allocates: tests and one-shot callers.
    fn observe(&mut self, pc: Pc, line_addr: u64, l2_miss: bool) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(pc, line_addr, l2_miss, &mut out);
        out
    }

    /// Resets all predictor state.
    fn reset(&mut self);
}

/// Adjacent-cache-line prefetching: on an L2 demand miss, also fetch the
/// other half of the aligned 128-byte pair (the line's "buddy").
#[derive(Clone, Debug)]
pub struct AdjacentLinePrefetcher {
    line_size: u64,
}

impl AdjacentLinePrefetcher {
    /// Creates the prefetcher for the given line size.
    pub fn new(line_size: u64) -> AdjacentLinePrefetcher {
        AdjacentLinePrefetcher { line_size }
    }
}

impl PrefetchEngine for AdjacentLinePrefetcher {
    fn observe_into(&mut self, _pc: Pc, line_addr: u64, l2_miss: bool, out: &mut Vec<u64>) {
        if l2_miss {
            out.push(line_addr ^ self.line_size);
        }
    }

    fn reset(&mut self) {}
}

/// IP-indexed stride prefetching with a fixed number of streams (8 on the
/// Pentium 4). Two consecutive equal line-strides arm a stream; armed
/// streams prefetch `distance` strides ahead.
///
/// Stream state is stored field-per-array (SoA) rather than as an array
/// of stream structs: `observe_into` runs once per demand reference and
/// both of its scans — the pc match and the LRU victim search — then
/// walk one small dense array apiece instead of striding over multi-line
/// structs. Consecutive demand references almost never share a pc (loop
/// bodies interleave their loads), so the pc scan is the common path,
/// not the `last_slot` memo.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    /// Owning pc per slot (garbage for invalid slots — masked by `valid`).
    pcs: Vec<u64>,
    /// Last observed line address per slot.
    last_lines: Vec<u64>,
    /// Armed stride per slot (line-address delta).
    strides: Vec<i64>,
    /// Consecutive equal-stride observations per slot.
    confidences: Vec<u8>,
    /// Last-touch clock per slot, for LRU reuse.
    lrus: Vec<u64>,
    /// Validity bitmask: bit `i` = slot `i` holds a live stream (stream
    /// counts are ≤ 64; [`StridePrefetcher::new`] enforces it).
    valid: u64,
    line_size: u64,
    distance: u64,
    clock: u64,
    /// Slot of the most recently observed pc — a pure lookup memo.
    /// pc-uniqueness of valid streams makes the shortcut observationally
    /// identical to the scan.
    last_slot: usize,
}

impl StridePrefetcher {
    /// Pentium 4 configuration: 8 streams, prefetch 2 strides ahead.
    pub fn pentium4(line_size: u64) -> StridePrefetcher {
        StridePrefetcher::new(8, line_size, 2)
    }

    /// Creates a prefetcher with `streams` tracking slots and the given
    /// prefetch `distance` (in strides).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ..= 64` streams are requested (validity is one
    /// bitmask word).
    pub fn new(streams: usize, line_size: u64, distance: u64) -> StridePrefetcher {
        assert!(
            (1..=64).contains(&streams),
            "stream count {streams} outside 1..=64"
        );
        StridePrefetcher {
            pcs: vec![0; streams],
            last_lines: vec![0; streams],
            strides: vec![0; streams],
            confidences: vec![0; streams],
            lrus: vec![0; streams],
            valid: 0,
            line_size,
            distance,
            clock: 0,
            last_slot: 0,
        }
    }

    /// First valid slot owned by `pc`, or `None`. Equivalent to the
    /// original struct-array `position` scan: valid streams have unique
    /// pcs, so "first match over valid slots" is "the match".
    #[inline]
    fn find(&self, pc: u64) -> Option<usize> {
        if self.valid & (1 << self.last_slot) != 0 && self.pcs[self.last_slot] == pc {
            return Some(self.last_slot);
        }
        let mut m = self.valid;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if self.pcs[i] == pc {
                return Some(i);
            }
            m &= m - 1;
        }
        None
    }
}

impl PrefetchEngine for StridePrefetcher {
    fn observe_into(&mut self, pc: Pc, line_addr: u64, l2_miss: bool, out: &mut Vec<u64>) {
        self.clock += 1;
        let clock = self.clock;

        if let Some(i) = self.find(pc.0) {
            self.last_slot = i;
            self.lrus[i] = clock;
            let delta = line_addr as i64 - self.last_lines[i] as i64;
            self.last_lines[i] = line_addr;
            if delta == 0 {
                return; // same line; no new information
            }
            if delta == self.strides[i] {
                self.confidences[i] = self.confidences[i].saturating_add(1);
            } else {
                self.strides[i] = delta;
                self.confidences[i] = 1;
            }
            // Prefetches issue only on demand misses: real prefetchers
            // are trained continuously but throttle issue, which is what
            // keeps them from eliminating every streaming miss.
            if !l2_miss {
                return;
            }
            if self.confidences[i] >= 2 {
                for k in 1..=self.distance {
                    let target = line_addr as i64 + self.strides[i] * k as i64;
                    if target >= 0 {
                        out.push(target as u64 & !(self.line_size - 1));
                    }
                }
            }
            return;
        }

        // Allocate a new stream: the first invalid slot, else the first
        // least-recently-used one — the order the struct-array
        // `min_by_key` (invalid keyed 0, stable min) produced.
        let n = self.pcs.len();
        let full = if n == 64 { u64::MAX } else { (1 << n) - 1 };
        let slot = if self.valid != full {
            (!self.valid).trailing_zeros() as usize
        } else {
            let mut oldest = 0usize;
            let mut oldest_lru = self.lrus[0];
            for (i, &lru) in self.lrus.iter().enumerate().skip(1) {
                if lru < oldest_lru {
                    oldest_lru = lru;
                    oldest = i;
                }
            }
            oldest
        };
        self.pcs[slot] = pc.0;
        self.last_lines[slot] = line_addr;
        self.strides[slot] = 0;
        self.confidences[slot] = 0;
        self.lrus[slot] = clock;
        self.valid |= 1 << slot;
        self.last_slot = slot;
    }

    fn reset(&mut self) {
        self.valid = 0;
        self.clock = 0;
        self.last_slot = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_line_fetches_buddy_on_miss_only() {
        let mut p = AdjacentLinePrefetcher::new(64);
        assert_eq!(p.observe(Pc(1), 0x1000, true), vec![0x1040]);
        assert_eq!(p.observe(Pc(1), 0x1040, true), vec![0x1000]);
        assert!(p.observe(Pc(1), 0x1000, false).is_empty());
    }

    #[test]
    fn stride_arms_after_two_equal_deltas() {
        let mut p = StridePrefetcher::new(8, 64, 2);
        assert!(p.observe(Pc(1), 0x0, true).is_empty()); // allocate
        assert!(p.observe(Pc(1), 0x40, true).is_empty()); // first delta
        let out = p.observe(Pc(1), 0x80, true); // second equal delta: armed
        assert_eq!(out, vec![0xc0, 0x100]);
    }

    #[test]
    fn stride_issues_only_on_misses() {
        let mut p = StridePrefetcher::new(8, 64, 2);
        p.observe(Pc(1), 0x0, true);
        p.observe(Pc(1), 0x40, true);
        // Armed, but this access hits: training continues, no issue.
        assert!(p.observe(Pc(1), 0x80, false).is_empty());
        // The next miss issues.
        assert_eq!(p.observe(Pc(1), 0xc0, true), vec![0x100, 0x140]);
    }

    #[test]
    fn stride_rearms_on_pattern_change() {
        let mut p = StridePrefetcher::new(8, 64, 1);
        p.observe(Pc(1), 0x0, true);
        p.observe(Pc(1), 0x40, true);
        assert!(!p.observe(Pc(1), 0x80, true).is_empty());
        // Break the pattern: stride changes, confidence resets.
        assert!(p.observe(Pc(1), 0x400, true).is_empty());
        assert!(p.observe(Pc(1), 0x440, true).is_empty());
        assert_eq!(p.observe(Pc(1), 0x480, true), vec![0x4c0]);
    }

    #[test]
    fn stream_table_capacity_is_bounded() {
        // With 2 streams, a third PC evicts the least recently used.
        let mut p = StridePrefetcher::new(2, 64, 1);
        for step in 0..3u64 {
            p.observe(Pc(1), 0x1000 + step * 64, true);
            p.observe(Pc(2), 0x8000 + step * 64, true);
        }
        assert!(!p.observe(Pc(1), 0x1000 + 3 * 64, true).is_empty());
        // PC 3 evicts PC 2 (least recently used is deterministic here).
        p.observe(Pc(3), 0x20000, true);
        // PC 1 is still tracked and armed.
        assert!(!p.observe(Pc(1), 0x1000 + 4 * 64, true).is_empty());
    }

    #[test]
    fn negative_strides_prefetch_downward() {
        let mut p = StridePrefetcher::new(8, 64, 1);
        p.observe(Pc(1), 0x1000, true);
        p.observe(Pc(1), 0xfc0, true);
        assert_eq!(p.observe(Pc(1), 0xf80, true), vec![0xf40]);
    }

    #[test]
    fn reset_clears_streams() {
        let mut p = StridePrefetcher::new(8, 64, 1);
        p.observe(Pc(1), 0x0, true);
        p.observe(Pc(1), 0x40, true);
        p.reset();
        assert!(
            p.observe(Pc(1), 0x80, true).is_empty(),
            "state survived reset"
        );
    }
}
