//! The machine model: hierarchy + prefetchers + counters + stall cycles.

use crate::counters::HwCounters;
use crate::platform::Platform;
use crate::prefetcher::{AdjacentLinePrefetcher, PrefetchEngine, StridePrefetcher};
use umi_cache::{Hierarchy, HitLevel};
use umi_ir::{AccessKind, MemAccess, Pc};
use umi_vm::AccessSink;

/// Which hardware prefetchers are enabled (paper §8: "The prefetchers can
/// be disabled independently but for our experiments, adjacent line
/// prefetching is always on" — both settings are provided).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PrefetchSetting {
    /// All hardware prefetching disabled (the paper's "HW prefetching
    /// disabled" configuration, and the only option on the K7).
    #[default]
    Off,
    /// Adjacent-line prefetching only.
    AdjacentOnly,
    /// Adjacent-line + stride prefetching (the Pentium 4 default).
    Full,
}

/// The simulated memory system of one platform.
///
/// Attach it to a VM run as the [`AccessSink`]; afterwards read the
/// [`HwCounters`] (what the paper's PAPI measurements see) and the stall
/// cycles (what the running-time figures are built from).
///
/// ```
/// use umi_hw::{Machine, Platform, PrefetchSetting};
/// use umi_vm::AccessSink;
/// use umi_ir::{AccessKind, MemAccess, Pc};
///
/// let mut m = Machine::new(Platform::pentium4(), PrefetchSetting::Off);
/// m.access(MemAccess { pc: Pc(0x400000), addr: 0x1000, width: 8, kind: AccessKind::Load });
/// assert_eq!(m.counters().l2_misses, 1);
/// ```
#[derive(Debug)]
pub struct Machine {
    platform: Platform,
    hierarchy: Hierarchy,
    adjacent: Option<AdjacentLinePrefetcher>,
    stride: Option<StridePrefetcher>,
    hw_fills: u64,
    sw_fills: u64,
    stall_cycles: u64,
    /// Line address of the most recent L2 miss, for the MLP/row-buffer
    /// discount.
    last_miss_line: Option<u64>,
    /// `log2(l1 line size)`, for same-line run detection.
    l1_shift: u32,
    /// L1 line number of the most recent demand reference (`u64::MAX` =
    /// none yet). Repeats of this line are deferred into `pending` and
    /// settled as one `l1_reuse_mru` call: they are guaranteed L1 hits
    /// (nothing between them can evict the line — prefetch fills touch
    /// only L2), so they cost no stall and never reach L2.
    cur_block: u64,
    /// Deferred same-line demand repeats not yet applied to L1.
    pending: u64,
    /// Whether any deferred repeat was a store.
    pending_write: bool,
    /// Reusable scratch for prefetcher decisions (avoids a `Vec`
    /// allocation per observed reference).
    fill_buf: Vec<u64>,
}

impl Machine {
    /// Creates a machine for `platform` with the requested prefetchers.
    ///
    /// Requesting prefetching on a platform without hardware prefetch
    /// support (the K7) silently degrades to [`PrefetchSetting::Off`],
    /// mirroring reality.
    pub fn new(platform: Platform, prefetch: PrefetchSetting) -> Machine {
        let effective = if platform.has_hw_prefetch {
            prefetch
        } else {
            PrefetchSetting::Off
        };
        let line = platform.l2.line_size;
        let adjacent =
            (effective != PrefetchSetting::Off).then(|| AdjacentLinePrefetcher::new(line));
        let stride = (effective == PrefetchSetting::Full).then(|| StridePrefetcher::pentium4(line));
        let l1_shift = platform.l1.line_size.trailing_zeros();
        Machine {
            hierarchy: Hierarchy::new(platform.l1, platform.l2),
            platform,
            adjacent,
            stride,
            hw_fills: 0,
            sw_fills: 0,
            stall_cycles: 0,
            last_miss_line: None,
            l1_shift,
            cur_block: u64::MAX,
            pending: 0,
            pending_write: false,
            fill_buf: Vec::new(),
        }
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Counter values accumulated so far.
    ///
    /// Derived from the hierarchy's own statistics — the access path does
    /// not maintain a second set of per-reference counters.
    pub fn counters(&self) -> HwCounters {
        let l1 = self.hierarchy.l1_stats();
        let l2 = self.hierarchy.l2_stats();
        HwCounters {
            l1_refs: l1.accesses,
            l1_misses: l1.misses,
            l2_refs: l2.accesses,
            l2_misses: l2.misses,
            hw_prefetch_fills: self.hw_fills,
            sw_prefetch_fills: self.sw_fills,
            insns: 0,
        }
    }

    /// Memory stall cycles accumulated so far.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Total running time in cycles for a run that retired `insns`
    /// instructions through this machine: one base cycle per instruction
    /// plus the accumulated memory stalls.
    pub fn total_cycles(&self, insns: u64) -> u64 {
        insns + self.stall_cycles
    }

    fn install_prefetches(&mut self, lines: &[u64], hw: bool) {
        for &line in lines {
            if !self.hierarchy.probe_l2(line) {
                self.hierarchy.prefetch_fill_l2(line);
                if hw {
                    self.hw_fills += 1;
                } else {
                    self.sw_fills += 1;
                }
            }
        }
    }

    /// Installs the scratch buffer's lines as hardware prefetch fills.
    /// Indexed loop rather than an iterator so the buffer and the
    /// hierarchy can be borrowed disjointly from `&mut self`.
    fn drain_fill_buf(&mut self) {
        for i in 0..self.fill_buf.len() {
            let line = self.fill_buf[i];
            if !self.hierarchy.probe_l2(line) {
                self.hierarchy.prefetch_fill_l2(line);
                self.hw_fills += 1;
            }
        }
        self.fill_buf.clear();
    }

    /// Runs both enabled prefetchers on one observed demand reference and
    /// installs what they propose, in the same order as the per-item path
    /// (adjacent's fills land before stride observes).
    #[inline]
    fn observe_and_install(&mut self, pc: Pc, line: u64, l2_miss: bool) {
        if let Some(adj) = &mut self.adjacent {
            adj.observe_into(pc, line, l2_miss, &mut self.fill_buf);
            if !self.fill_buf.is_empty() {
                self.drain_fill_buf();
            }
        }
        if let Some(st) = &mut self.stride {
            st.observe_into(pc, line, l2_miss, &mut self.fill_buf);
            if !self.fill_buf.is_empty() {
                self.drain_fill_buf();
            }
        }
    }

    /// Settles deferred same-line repeats into L1. Must run before any
    /// other L1 access and at the end of every sink call, so external
    /// observers ([`Machine::counters`]) always see settled state.
    #[inline]
    fn flush_run(&mut self) {
        if self.pending > 0 {
            self.hierarchy
                .l1_reuse_mru(self.pending, self.pending_write);
            self.pending = 0;
            self.pending_write = false;
        }
    }

    #[inline]
    fn handle(&mut self, access: MemAccess) {
        if access.kind == AccessKind::Prefetch {
            // Software prefetch: install into L2, charge one issue cycle.
            // L2-only, so it does not break a pending L1 run.
            self.stall_cycles += 1;
            self.install_prefetches(&[self.platform.l2.line_addr(access.addr)], false);
            return;
        }

        let block = access.addr >> self.l1_shift;
        if block == self.cur_block {
            // Same-line repeat: a guaranteed L1 hit. Defer the L1
            // bookkeeping; no stall, no L2 reference. Prefetchers still
            // observe every demand reference (their stream training and
            // replacement clocks must see identical traffic), with
            // `l2_miss = false` exactly as the per-item path would pass.
            self.pending += 1;
            self.pending_write |= access.kind == AccessKind::Store;
            if self.adjacent.is_some() || self.stride.is_some() {
                let line = self.platform.l2.line_addr(access.addr);
                self.observe_and_install(access.pc, line, false);
            }
            return;
        }
        self.flush_run();
        self.cur_block = block;

        let level = if access.kind == AccessKind::Store {
            self.hierarchy.access_write(access.addr)
        } else {
            self.hierarchy.access(access.addr)
        };
        match level {
            HitLevel::L1 => {}
            HitLevel::L2 => {
                self.stall_cycles += self.platform.l2_hit_cycles;
            }
            HitLevel::Memory => {
                // Memory-level parallelism / DRAM row-buffer proxy: a miss
                // near the previous miss overlaps with it (streaming reads
                // pipeline in hardware); distant misses — pointer chases —
                // pay the full serialized latency.
                let line = self.platform.l2.line_addr(access.addr);
                let near = self
                    .last_miss_line
                    .is_some_and(|prev| prev.abs_diff(line) <= 16 * self.platform.l2.line_size);
                self.stall_cycles += if near {
                    self.platform.memory_cycles / 3
                } else {
                    self.platform.memory_cycles
                };
                self.last_miss_line = Some(line);
            }
        }

        // Hardware prefetchers observe demand traffic at line granularity.
        if self.adjacent.is_some() || self.stride.is_some() {
            let line = self.platform.l2.line_addr(access.addr);
            self.observe_and_install(access.pc, line, level == HitLevel::Memory);
        }
    }

    /// Prefetch-off batch loop: item-for-item the same outcomes as
    /// [`handle`](Self::handle) with both prefetchers absent, but the run
    /// detector, deferred-run counters, and stall accumulator live in
    /// locals for the whole batch instead of bouncing through `&mut self`
    /// per reference, and there are no per-item prefetcher checks. The
    /// deferred run is settled before returning (the caller's `flush_run`
    /// then finds nothing pending).
    fn batch_prefetch_off(&mut self, accesses: &[MemAccess]) {
        let mut cur_block = self.cur_block;
        let mut pending = self.pending;
        let mut pending_write = self.pending_write;
        let mut stall = 0u64;
        for a in accesses {
            if a.kind == AccessKind::Prefetch {
                // L2-only: does not break the pending L1 run.
                stall += 1;
                self.install_prefetches(&[self.platform.l2.line_addr(a.addr)], false);
                continue;
            }
            let block = a.addr >> self.l1_shift;
            if block == cur_block {
                pending += 1;
                pending_write |= a.kind == AccessKind::Store;
                continue;
            }
            if pending > 0 {
                self.hierarchy.l1_reuse_mru(pending, pending_write);
                pending = 0;
                pending_write = false;
            }
            cur_block = block;
            let level = if a.kind == AccessKind::Store {
                self.hierarchy.access_write(a.addr)
            } else {
                self.hierarchy.access(a.addr)
            };
            match level {
                HitLevel::L1 => {}
                HitLevel::L2 => stall += self.platform.l2_hit_cycles,
                HitLevel::Memory => {
                    let line = self.platform.l2.line_addr(a.addr);
                    let near = self
                        .last_miss_line
                        .is_some_and(|prev| prev.abs_diff(line) <= 16 * self.platform.l2.line_size);
                    stall += if near {
                        self.platform.memory_cycles / 3
                    } else {
                        self.platform.memory_cycles
                    };
                    self.last_miss_line = Some(line);
                }
            }
        }
        if pending > 0 {
            self.hierarchy.l1_reuse_mru(pending, pending_write);
        }
        self.cur_block = cur_block;
        self.pending = 0;
        self.pending_write = false;
        self.stall_cycles += stall;
    }
}

impl AccessSink for Machine {
    fn access(&mut self, access: MemAccess) {
        self.handle(access);
        self.flush_run();
    }

    /// Batch path: the per-block batches the VM delivers are consumed with
    /// same-line runs coalesced. `cur_block` deliberately survives across
    /// batches (the MRU L1 line stays resident between them), so runs that
    /// span batch boundaries still coalesce; only the deferred counts are
    /// settled per call. With no prefetcher enabled — every prefetch-off
    /// machine, i.e. most of Figure 3 and Table 4's traffic — the batch
    /// runs through a register-local loop instead of the per-item handler.
    fn access_batch(&mut self, accesses: &[MemAccess]) {
        if self.adjacent.is_none() && self.stride.is_none() {
            self.batch_prefetch_off(accesses);
            return;
        }
        for &access in accesses {
            self.handle(access);
        }
        self.flush_run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umi_ir::Pc;

    fn load(pc: u64, addr: u64) -> MemAccess {
        MemAccess {
            pc: Pc(pc),
            addr,
            width: 8,
            kind: AccessKind::Load,
        }
    }

    #[test]
    fn misses_cost_memory_latency() {
        let mut m = Machine::new(Platform::pentium4(), PrefetchSetting::Off);
        m.access(load(1, 0x1000));
        assert_eq!(m.stall_cycles(), Platform::pentium4().memory_cycles);
        m.access(load(1, 0x1000));
        assert_eq!(
            m.stall_cycles(),
            Platform::pentium4().memory_cycles,
            "L1 hit is free"
        );
        assert_eq!(m.total_cycles(10), 10 + m.stall_cycles());
    }

    #[test]
    fn stride_prefetch_hides_streaming_misses() {
        let mut off = Machine::new(Platform::pentium4(), PrefetchSetting::Off);
        let mut on = Machine::new(Platform::pentium4(), PrefetchSetting::Full);
        // Stream over 4 MB (too big for L2) with 64-byte stride.
        for i in 0..65536u64 {
            let a = 0x100_0000 + i * 64;
            off.access(load(1, a));
            on.access(load(1, a));
        }
        // Miss-triggered issue with distance 2 covers two of every three
        // lines: a ~67% reduction, close to the paper's measured 69% for
        // the hardware prefetcher.
        assert!(
            on.counters().l2_misses * 2 < off.counters().l2_misses,
            "prefetch on: {} misses, off: {}",
            on.counters().l2_misses,
            off.counters().l2_misses
        );
        assert!(on.stall_cycles() < off.stall_cycles());
        assert!(on.counters().hw_prefetch_fills > 0);
    }

    #[test]
    fn adjacent_only_halves_sequential_byte_misses() {
        let mut off = Machine::new(Platform::pentium4(), PrefetchSetting::Off);
        let mut adj = Machine::new(Platform::pentium4(), PrefetchSetting::AdjacentOnly);
        for i in 0..32768u64 {
            let a = 0x200_0000 + i * 64;
            off.access(load(1, a));
            adj.access(load(1, a));
        }
        let r = adj.counters().l2_misses as f64 / off.counters().l2_misses as f64;
        assert!(
            r < 0.6,
            "adjacent-line should roughly halve misses, got {r}"
        );
    }

    #[test]
    fn k7_never_prefetches() {
        let mut m = Machine::new(Platform::k7(), PrefetchSetting::Full);
        for i in 0..4096u64 {
            m.access(load(1, 0x100_0000 + i * 64));
        }
        assert_eq!(m.counters().hw_prefetch_fills, 0);
    }

    #[test]
    fn software_prefetch_counts_separately_and_fills_l2() {
        let mut m = Machine::new(Platform::pentium4(), PrefetchSetting::Off);
        m.access(MemAccess {
            pc: Pc(1),
            addr: 0x3000,
            width: 64,
            kind: AccessKind::Prefetch,
        });
        assert_eq!(m.counters().sw_prefetch_fills, 1);
        assert_eq!(m.counters().l1_refs, 0, "prefetch is not demand traffic");
        m.access(load(2, 0x3000));
        assert_eq!(
            m.counters().l2_misses,
            0,
            "demand load hits the prefetched line in L2"
        );
    }
}
