//! # umi-hw — simulated hardware platforms
//!
//! The paper evaluates UMI against two real machines — a 3.06 GHz Intel
//! Pentium 4 and a 1.2 GHz AMD Athlon MP (K7) — using their hardware
//! performance counters as ground truth, and against the Pentium 4's two
//! hardware L2 prefetchers (adjacent-cache-line and stride, §8). This
//! crate models those machines:
//!
//! * [`Platform`] — cache geometry plus a simple in-order timing model;
//! * [`Machine`] — an [`AccessSink`](umi_vm::AccessSink) that plays the
//!   role of the real memory system: it simulates the hierarchy, charges
//!   stall cycles, drives the hardware prefetchers, and updates the
//!   [`HwCounters`];
//! * [`AdjacentLinePrefetcher`] / [`StridePrefetcher`] — the Pentium 4's
//!   documented L2 prefetch mechanisms (the K7 has none);
//! * [`SamplingCostModel`] — the cost of counter-overflow interrupts, used
//!   to reproduce Table 1 (hardware counters are prohibitively expensive at
//!   fine sample sizes).
//!
//! Everything is deterministic virtual time; "running time" in the
//! reproduced figures means cycles from this model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod machine;
mod platform;
mod prefetcher;
mod sampling;

pub use counters::HwCounters;
pub use machine::{Machine, PrefetchSetting};
pub use platform::Platform;
pub use prefetcher::{AdjacentLinePrefetcher, PrefetchEngine, StridePrefetcher};
pub use sampling::SamplingCostModel;
