//! Hardware performance counters.

/// The event counters exposed by the simulated performance-monitoring unit.
///
/// The paper's correlation studies (§6.2) use exactly one derived quantity:
/// the L2 miss ratio, "obtained by dividing the number of L2 miss counts by
/// the number of L2 references, for both loads and stores".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HwCounters {
    /// L1 data-cache references.
    pub l1_refs: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 references (i.e. L1 misses that looked up L2).
    pub l2_refs: u64,
    /// L2 misses (references served from memory).
    pub l2_misses: u64,
    /// Lines installed by hardware prefetchers.
    pub hw_prefetch_fills: u64,
    /// Lines installed by software `prefetch` instructions.
    pub sw_prefetch_fills: u64,
    /// Retired instructions.
    pub insns: u64,
}

impl HwCounters {
    /// L1 miss ratio in `[0, 1]`.
    pub fn l1_miss_ratio(&self) -> f64 {
        ratio(self.l1_misses, self.l1_refs)
    }

    /// L2 miss ratio in `[0, 1]` — the quantity correlated in Tables 4/5.
    pub fn l2_miss_ratio(&self) -> f64 {
        ratio(self.l2_misses, self.l2_refs)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let c = HwCounters {
            l2_refs: 200,
            l2_misses: 50,
            l1_refs: 1000,
            l1_misses: 200,
            ..Default::default()
        };
        assert!((c.l2_miss_ratio() - 0.25).abs() < 1e-12);
        assert!((c.l1_miss_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(HwCounters::default().l2_miss_ratio(), 0.0);
    }
}
