//! The cost of sampling hardware counters (Table 1).
//!
//! Hardware counters "generate interrupts when they saturate at a specified
//! limit known as the sample size. The runtime overhead of using a counter
//! increases dramatically as the sample size is decreased" (§1.2). The
//! paper demonstrates this with 181.mcf on a Xeon using PAPI: a sample size
//! of 10 costs a 20× slowdown.

/// Models the overhead of counter-overflow sampling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingCostModel {
    /// Cycles consumed by one overflow interrupt (kernel entry, PMU
    /// read-out, signal delivery to the profiler, return).
    pub interrupt_cycles: u64,
}

impl SamplingCostModel {
    /// A PAPI-like cost: overflow interrupts on the paper-era Linux kernel
    /// cost on the order of several microseconds; at ~2–3 GHz that is
    /// roughly 10⁴ cycles.
    pub fn papi_like() -> SamplingCostModel {
        SamplingCostModel {
            interrupt_cycles: 10_000,
        }
    }

    /// Overhead cycles for observing `events` occurrences at the given
    /// sample size (one interrupt per `sample_size` events). A sample size
    /// of 0 means sampling is disabled and costs nothing.
    pub fn overhead_cycles(&self, events: u64, sample_size: u64) -> u64 {
        events.checked_div(sample_size).unwrap_or(0) * self.interrupt_cycles
    }

    /// Slowdown factor (≥ 1.0) of a run with `base_cycles` of useful work.
    pub fn slowdown(&self, base_cycles: u64, events: u64, sample_size: u64) -> f64 {
        if base_cycles == 0 {
            return 1.0;
        }
        let oh = self.overhead_cycles(events, sample_size);
        (base_cycles + oh) as f64 / base_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_scales_inversely_with_sample_size() {
        let m = SamplingCostModel::papi_like();
        let events = 1_000_000;
        let s10 = m.overhead_cycles(events, 10);
        let s1k = m.overhead_cycles(events, 1000);
        let s1m = m.overhead_cycles(events, 1_000_000);
        assert_eq!(s10, 100 * s1k);
        assert_eq!(s1m, m.interrupt_cycles);
        assert!(s10 > s1k && s1k > s1m);
    }

    #[test]
    fn disabled_sampling_is_free() {
        let m = SamplingCostModel::papi_like();
        assert_eq!(m.overhead_cycles(1_000_000, 0), 0);
        assert_eq!(m.slowdown(1000, 1_000_000, 0), 1.0);
    }

    #[test]
    fn table1_shape_small_samples_are_catastrophic() {
        // mcf-like: memory-bound, ~1 counted event per 30 cycles of work.
        let m = SamplingCostModel::papi_like();
        let base = 30_000_000u64;
        let events = 1_000_000u64;
        let slow10 = m.slowdown(base, events, 10);
        let slow100k = m.slowdown(base, events, 100_000);
        assert!(
            slow10 > 20.0,
            "paper saw 20x at sample size 10, got {slow10}"
        );
        assert!(
            slow100k < 1.05,
            "large samples are near-free, got {slow100k}"
        );
    }
}
