//! Prefetch-off [`Machine`] ⇄ [`FullSimulator`] counter identity.
//!
//! With hardware prefetch off, a machine's cache counters are the same
//! simulation as a Cachegrind-equivalent full simulation over the same
//! geometry: both push the identical demand stream through the identical
//! [`Hierarchy`](umi_cache::Hierarchy) implementation, and the stall
//! model the machine additionally runs never feeds back into the caches.
//! Table 4's "Cachegrind vs P4, no HW prefetch" correlation is exactly
//! 1.000 *because* of this identity, and `corr_cell` relies on it to
//! read the prefetch-off hardware rows off the full simulators instead
//! of running two more per-reference machine simulations. This property
//! pins the identity on random batched streams for both platforms.

use umi_cache::FullSimulator;
use umi_hw::{Machine, Platform, PrefetchSetting};
use umi_ir::{AccessKind, MemAccess, Pc};
use umi_testkit::{check, Xoshiro256pp};
use umi_vm::AccessSink;

/// Random demand stream with same-line runs, strided phases, and
/// pointer-chase jumps, delivered in random-length batches.
fn drive(rng: &mut Xoshiro256pp, machine: &mut Machine, sim: &mut FullSimulator) {
    let mut addr = 0x10_0000u64;
    let n_batches = 4 + (rng.next_u64() % 12) as usize;
    for _ in 0..n_batches {
        let len = 1 + (rng.next_u64() % 24) as usize;
        let mut batch = Vec::with_capacity(len);
        for _ in 0..len {
            match rng.next_u64() % 10 {
                // Same-line run tail.
                0..=4 => addr += rng.next_u64() % 8,
                // Strided step (64-byte lines).
                5..=7 => addr += 64 + (rng.next_u64() % 3) * 64,
                // Wide jump (chase).
                _ => addr = 0x10_0000 + (rng.next_u64() % (1 << 24)),
            }
            let kind = if rng.next_u64().is_multiple_of(4) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            batch.push(MemAccess {
                pc: Pc(4 * (1 + rng.next_u64() % 16)),
                addr,
                width: 8,
                kind,
            });
        }
        machine.access_batch(&batch);
        sim.access_batch(&batch);
    }
}

#[test]
fn prefetch_off_machine_counters_equal_the_full_simulation() {
    for (platform, sim) in [
        (Platform::pentium4(), FullSimulator::pentium4 as fn() -> _),
        (Platform::k7(), FullSimulator::k7 as fn() -> _),
    ] {
        check("machine_fullsim_equiv", 96, |rng: &mut Xoshiro256pp| {
            let mut machine = Machine::new(platform.clone(), PrefetchSetting::Off);
            let mut full = sim();
            drive(rng, &mut machine, &mut full);
            let hw = machine.counters();
            let l2 = full.l2_stats();
            assert_eq!(hw.l2_refs, l2.accesses, "L2 reference counts diverge");
            assert_eq!(hw.l2_misses, l2.misses, "L2 miss counts diverge");
            assert_eq!(
                hw.l1_refs,
                full.l1_stats().accesses,
                "L1 reference counts diverge"
            );
            assert_eq!(
                hw.l1_misses,
                full.l1_stats().misses,
                "L1 miss counts diverge"
            );
        });
    }
}
