//! Batch ⇄ per-item differential for the [`Machine`] sink.
//!
//! `Machine::access_batch` coalesces same-line demand runs into one
//! hierarchy lookup plus a deferred bulk update, while the prefetchers
//! keep observing every reference. This property pins the batched machine
//! to an independent per-item reference — the pre-batching access loop,
//! re-stated here over the same [`Hierarchy`] and prefetch engines — on
//! every counter and on the stall-cycle total, across prefetch settings,
//! platforms, and replacement policies.

use umi_cache::{CacheConfig, Hierarchy, HitLevel, ReplacementPolicy};
use umi_hw::{
    AdjacentLinePrefetcher, Machine, Platform, PrefetchEngine, PrefetchSetting, StridePrefetcher,
};
use umi_ir::{AccessKind, MemAccess, Pc};
use umi_testkit::{check, Xoshiro256pp};
use umi_vm::AccessSink;

/// The original per-item machine loop: full hierarchy access per
/// reference, stall accounting, MLP discount, prefetcher observe/install.
struct RefMachine {
    platform: Platform,
    hierarchy: Hierarchy,
    adjacent: Option<AdjacentLinePrefetcher>,
    stride: Option<StridePrefetcher>,
    hw_fills: u64,
    sw_fills: u64,
    stall_cycles: u64,
    last_miss_line: Option<u64>,
}

impl RefMachine {
    fn new(platform: Platform, prefetch: PrefetchSetting) -> RefMachine {
        let effective = if platform.has_hw_prefetch {
            prefetch
        } else {
            PrefetchSetting::Off
        };
        let line = platform.l2.line_size;
        let adjacent =
            (effective != PrefetchSetting::Off).then(|| AdjacentLinePrefetcher::new(line));
        let stride = (effective == PrefetchSetting::Full).then(|| StridePrefetcher::pentium4(line));
        RefMachine {
            hierarchy: Hierarchy::new(platform.l1, platform.l2),
            platform,
            adjacent,
            stride,
            hw_fills: 0,
            sw_fills: 0,
            stall_cycles: 0,
            last_miss_line: None,
        }
    }

    fn install(&mut self, lines: Vec<u64>, hw: bool) {
        for line in lines {
            if !self.hierarchy.probe_l2(line) {
                self.hierarchy.prefetch_fill_l2(line);
                if hw {
                    self.hw_fills += 1;
                } else {
                    self.sw_fills += 1;
                }
            }
        }
    }

    fn access(&mut self, access: MemAccess) {
        if access.kind == AccessKind::Prefetch {
            self.stall_cycles += 1;
            self.install(vec![self.platform.l2.line_addr(access.addr)], false);
            return;
        }
        let level = if access.kind == AccessKind::Store {
            self.hierarchy.access_write(access.addr)
        } else {
            self.hierarchy.access(access.addr)
        };
        match level {
            HitLevel::L1 => {}
            HitLevel::L2 => self.stall_cycles += self.platform.l2_hit_cycles,
            HitLevel::Memory => {
                let line = self.platform.l2.line_addr(access.addr);
                let near = self
                    .last_miss_line
                    .is_some_and(|prev| prev.abs_diff(line) <= 16 * self.platform.l2.line_size);
                self.stall_cycles += if near {
                    self.platform.memory_cycles / 3
                } else {
                    self.platform.memory_cycles
                };
                self.last_miss_line = Some(line);
            }
        }
        if self.adjacent.is_some() || self.stride.is_some() {
            let line = self.platform.l2.line_addr(access.addr);
            let l2_miss = level == HitLevel::Memory;
            if let Some(adj) = &mut self.adjacent {
                let fills = adj.observe(access.pc, line, l2_miss);
                self.install(fills, true);
            }
            if let Some(st) = &mut self.stride {
                let fills = st.observe(access.pc, line, l2_miss);
                self.install(fills, true);
            }
        }
    }
}

/// Demand traffic with the shapes the batch path special-cases: same-line
/// runs in a hot working set, unit-stride streaming bursts (arming the
/// stride prefetcher, spilling past L2), and software prefetch hints
/// landing mid-run.
fn random_stream(rng: &mut Xoshiro256pp, refs: usize) -> Vec<MemAccess> {
    let mut out = Vec::with_capacity(refs + 16);
    let mut cursor = 0x100_0000u64; // streaming frontier, far from the hot set
    while out.len() < refs {
        match rng.below(4) {
            // A same-line run in the hot working set.
            0..=1 => {
                let line = rng.below(256) * 64;
                for _ in 0..=rng.below(5) {
                    let kind = match rng.below(12) {
                        0 => AccessKind::Prefetch,
                        1 | 2 => AccessKind::Store,
                        _ => AccessKind::Load,
                    };
                    out.push(MemAccess {
                        pc: Pc(1 + rng.below(16)),
                        addr: line + rng.below(64),
                        width: 8,
                        kind,
                    });
                }
            }
            // A unit-stride streaming burst from one pc.
            2 => {
                let pc = Pc(100 + rng.below(4));
                for _ in 0..=rng.below(12) {
                    out.push(MemAccess {
                        pc,
                        addr: cursor,
                        width: 8,
                        kind: AccessKind::Load,
                    });
                    cursor += 64;
                }
            }
            // A far pointer-chase-like jump (full-latency miss).
            _ => out.push(MemAccess {
                pc: Pc(50),
                addr: 0x4000_0000 + rng.below(1 << 24),
                width: 8,
                kind: AccessKind::Load,
            }),
        }
    }
    out
}

fn machine_matches(platform: fn() -> Platform, setting: PrefetchSetting, label: &str) {
    check(label, 32, |rng| {
        let stream = random_stream(rng, 1200);
        let mut batched = Machine::new(platform(), setting);
        let mut reference = RefMachine::new(platform(), setting);

        let mut i = 0;
        while i < stream.len() {
            let end = (i + 1 + rng.below(9) as usize).min(stream.len());
            batched.access_batch(&stream[i..end]);
            i = end;
        }
        for &a in &stream {
            reference.access(a);
        }

        let got = batched.counters();
        assert_eq!(got.l1_refs, reference.hierarchy.l1_stats().accesses);
        assert_eq!(got.l1_misses, reference.hierarchy.l1_stats().misses);
        assert_eq!(got.l2_refs, reference.hierarchy.l2_stats().accesses);
        assert_eq!(got.l2_misses, reference.hierarchy.l2_stats().misses);
        assert_eq!(got.hw_prefetch_fills, reference.hw_fills);
        assert_eq!(got.sw_prefetch_fills, reference.sw_fills);
        assert_eq!(batched.stall_cycles(), reference.stall_cycles);
    });
}

#[test]
fn pentium4_prefetch_off() {
    machine_matches(
        Platform::pentium4,
        PrefetchSetting::Off,
        "batched Machine matches per-item (P4, off)",
    );
}

#[test]
fn pentium4_adjacent_only() {
    machine_matches(
        Platform::pentium4,
        PrefetchSetting::AdjacentOnly,
        "batched Machine matches per-item (P4, adjacent)",
    );
}

#[test]
fn pentium4_full_prefetch() {
    machine_matches(
        Platform::pentium4,
        PrefetchSetting::Full,
        "batched Machine matches per-item (P4, full)",
    );
}

#[test]
fn k7_no_prefetch_hardware() {
    machine_matches(
        Platform::k7,
        PrefetchSetting::Full,
        "batched Machine matches per-item (K7)",
    );
}

/// A synthetic platform with Random-replacement caches: the coalesced
/// path must keep the victim RNG in lockstep with the per-item path (run
/// tails are hits and must not advance it).
#[test]
fn random_replacement_stays_in_lockstep() {
    fn random_platform() -> Platform {
        Platform {
            name: "random-replacement test rig",
            l1: CacheConfig::new(16, 4, 64).policy(ReplacementPolicy::Random),
            l2: CacheConfig::new(256, 8, 64).policy(ReplacementPolicy::Random),
            l2_hit_cycles: 10,
            memory_cycles: 200,
            clock_mhz: 1000,
            has_hw_prefetch: true,
        }
    }
    machine_matches(
        random_platform,
        PrefetchSetting::Full,
        "batched Machine matches per-item (Random policy)",
    );
}
