//! Static verification of prefetch-rewritten programs.
//!
//! [`inject_prefetches`](crate::inject_prefetches) plants hints derived
//! from *dynamic* stride profiles; this checker proves, per inserted
//! prefetch, that the rewrite could not have gone wrong in any of the
//! ways a prefetcher classically does:
//!
//! * **UnsafePrefetch** (error) — the hint does not guard any following
//!   load of the same address expression, or reaches more than a page
//!   past it. A same-expression, same-page hint can only touch pages the
//!   demand access itself is about to touch, so it can never fault where
//!   the program would not.
//! * **StrideMismatch** (error) — the static affine classifier *knows*
//!   the guarded load's stride and the hint contradicts it: wrong
//!   direction, a distance under the planner's two-line minimum, or a
//!   prefetch for a provably stationary (loop-invariant) address.
//!   Statically irregular loads are exempt: resolving those with runtime
//!   profiles is exactly UMI's value (paper §7), and the checker only
//!   reports contradictions it can prove.
//! * **RedundantPrefetch** (error) — two hints in one innermost loop
//!   cover the same address expression within one cache line; the second
//!   can only waste bandwidth.
//! * **MissedCandidate** (warning) — a load the static model predicts
//!   delinquent ([`Delinquency::PredictHot`]) with a known stride has no
//!   covering hint in its loop. A warning, not an error: the dynamic
//!   profiler may have (correctly) measured the load cold — unless the
//!   must-cache abstract interpreter *proves* the load misses every
//!   iteration ([`Verdict::AlwaysMiss`]), in which case the message says
//!   so: the candidate is confirmed, not merely predicted.
//! * **PointlessPrefetch** (warning) — the hint guards a load the
//!   must-cache analysis proves L1-resident on every steady-state
//!   iteration ([`Verdict::AlwaysHit`]): the line is already in the
//!   cache when the demand access arrives, so the hint can only spend an
//!   issue slot. A warning, not an error — wasteful, never wrong.
//!
//! Diagnostics are stably ordered by `(pc, kind, block)`, like the
//! `umi-analyze` lint suite they feed into the `umi_lint` CI gate with.

use std::fmt;
use umi_analyze::{
    absint_program, predict_program, CacheGeometry, Delinquency, Severity, StaticClass, Verdict,
};
use umi_cache::{MIN_PREFETCH_DISTANCE_BYTES, PAGE_BYTES};
use umi_ir::{BlockId, Insn, MemRef, Pc, Program, Reg};

/// The kinds of prefetch-plan finding, in report order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CheckKind {
    /// A hint that guards no load or reaches past the page guarantee.
    UnsafePrefetch,
    /// A hint contradicting the provable stride of its guarded load.
    StrideMismatch,
    /// A hint already covered by an earlier hint in the same loop.
    RedundantPrefetch,
    /// A predicted-hot strided load left without any hint.
    MissedCandidate,
    /// A hint guarding a load proven to hit L1 every iteration.
    PointlessPrefetch,
}

impl CheckKind {
    /// Short stable name used in reports and goldens.
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::UnsafePrefetch => "unsafe-prefetch",
            CheckKind::StrideMismatch => "stride-mismatch",
            CheckKind::RedundantPrefetch => "redundant-prefetch",
            CheckKind::MissedCandidate => "missed-candidate",
            CheckKind::PointlessPrefetch => "pointless-prefetch",
        }
    }

    /// The severity this kind always carries.
    pub fn severity(self) -> Severity {
        match self {
            CheckKind::MissedCandidate | CheckKind::PointlessPrefetch => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One prefetch-plan finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanDiagnostic {
    /// Address of the offending prefetch (or uncovered load).
    pub pc: Pc,
    /// The owning block.
    pub block: BlockId,
    /// What was found.
    pub kind: CheckKind,
    /// Human-readable detail.
    pub message: String,
}

impl PlanDiagnostic {
    /// The severity of this finding (fixed per kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#x} [{}] {}: {} ({})",
            self.pc.0,
            self.severity(),
            self.kind.name(),
            self.message,
            self.block
        )
    }
}

/// The address *expression* of a reference — everything but the
/// displacement. Two refs with equal shape walk memory in lockstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct ExprShape {
    base: Option<Reg>,
    index: Option<(Reg, u8)>,
}

impl ExprShape {
    fn of(m: &MemRef) -> ExprShape {
        ExprShape {
            base: m.base,
            index: m.index,
        }
    }
}

/// Checks every prefetch hint of a (typically rewritten) `program`
/// against the static affine/cache model.
///
/// `geom` is the L1 geometry the delinquency predictions are scored
/// against and `hot_miss_floor` the dynamic threshold floor they assume —
/// pass the same values as `umi_analyze::predict_program`. `l2` is the
/// next level's geometry, which the must-cache abstract interpreter
/// ([`absint_program`]) needs to certify AlwaysMiss verdicts.
///
/// The result is sorted by `(pc, kind, block)` and deterministic.
pub fn check_rewritten(
    program: &Program,
    geom: &CacheGeometry,
    l2: &CacheGeometry,
    hot_miss_floor: f64,
) -> Vec<PlanDiagnostic> {
    let preds = predict_program(program, geom, hot_miss_floor);
    let rows = absint_program(program, geom, l2);
    let mut out = Vec::new();

    // Classification and loop id per load pc (loads only: hints guard
    // loads). `classify_program` orders loads before stores at one pc.
    let class_of = |pc: Pc| {
        preds
            .iter()
            .find(|p| p.sref.pc == pc && !p.sref.is_store)
            .map(|p| p.sref.class)
    };
    // Proven steady-state L1 verdict per load pc. An instruction can
    // issue two load sites with different verdicts; like the soundness
    // audit, treat the pc as proven only when every load site agrees.
    let verdict_of = |pc: Pc| {
        let mut loads = rows.iter().filter(|r| r.pc == pc && !r.is_store);
        let first = loads.next()?.l1;
        loads.all(|r| r.l1 == first).then_some(first)
    };

    // Hints grouped per innermost loop for the redundancy / coverage
    // checks. Blocks outside any loop group per block: a straight-line
    // duplicate pair is just as redundant.
    let cfg = umi_analyze::Cfg::build(program);
    let funcs = umi_analyze::analyze_program(program, &cfg);
    let innermost = umi_analyze::innermost_loop_map(program.blocks.len(), &funcs);
    let group_of = |block: BlockId| {
        innermost[block.index()].map_or((usize::MAX, block.index()), |(f, l)| (f, l))
    };

    // (group, shape) -> first hint seen, in pc order.
    let mut seen: Vec<((usize, usize), ExprShape, Pc, i64)> = Vec::new();

    for block in &program.blocks {
        for (i, (pc, insn)) in block.iter_with_pc().enumerate() {
            let Insn::Prefetch { mem } = insn else {
                continue;
            };

            // The guarded load: the first following instruction in the
            // block with an unfiltered load of the same expression shape.
            let guarded = block.insns[i + 1..].iter().enumerate().find_map(|(j, g)| {
                g.loads()
                    .into_iter()
                    .map(|(m, _)| m)
                    .find(|m| !m.is_filtered() && ExprShape::of(m) == ExprShape::of(mem))
                    .map(|m| (block.insn_pc(i + 1 + j), m))
            });
            let Some((load_pc, load_mem)) = guarded else {
                out.push(PlanDiagnostic {
                    pc,
                    block: block.id,
                    kind: CheckKind::UnsafePrefetch,
                    message: format!("hint {mem} guards no following load of the same expression"),
                });
                continue;
            };

            let delta = mem.disp.wrapping_sub(load_mem.disp);
            if delta.unsigned_abs() > PAGE_BYTES {
                out.push(PlanDiagnostic {
                    pc,
                    block: block.id,
                    kind: CheckKind::UnsafePrefetch,
                    message: format!(
                        "distance {delta} exceeds the {PAGE_BYTES}-byte page guarantee"
                    ),
                });
            }

            match class_of(load_pc) {
                Some(StaticClass::ConstantStride(s)) => {
                    if delta.signum() != s.signum() {
                        out.push(PlanDiagnostic {
                            pc,
                            block: block.id,
                            kind: CheckKind::StrideMismatch,
                            message: format!(
                                "distance {delta} runs against the provable stride {s}"
                            ),
                        });
                    } else if delta.unsigned_abs() < MIN_PREFETCH_DISTANCE_BYTES {
                        out.push(PlanDiagnostic {
                            pc,
                            block: block.id,
                            kind: CheckKind::StrideMismatch,
                            message: format!(
                                "distance {delta} is under the {MIN_PREFETCH_DISTANCE_BYTES}-byte \
                                 minimum"
                            ),
                        });
                    }
                }
                Some(StaticClass::LoopInvariant) => {
                    out.push(PlanDiagnostic {
                        pc,
                        block: block.id,
                        kind: CheckKind::StrideMismatch,
                        message: format!("guarded load {load_mem} is provably loop-invariant"),
                    });
                }
                // Irregular / NotInLoop / unclassified: the hint rests on
                // dynamic knowledge the static model cannot contradict.
                _ => {}
            }

            // A hint for a line the must-analysis proves resident when the
            // guarded load executes: correct, but it can never help.
            if verdict_of(load_pc) == Some(Verdict::AlwaysHit) {
                out.push(PlanDiagnostic {
                    pc,
                    block: block.id,
                    kind: CheckKind::PointlessPrefetch,
                    message: format!(
                        "guarded load {load_mem} provably hits L1 every steady-state iteration"
                    ),
                });
            }

            // Redundancy: an earlier hint in the same loop covering the
            // same expression within a line.
            let group = group_of(block.id);
            let shape = ExprShape::of(mem);
            if let Some((_, _, first_pc, first_disp)) = seen
                .iter()
                .find(|(g, sh, _, _)| *g == group && *sh == shape)
                .copied()
            {
                if mem.disp.wrapping_sub(first_disp).unsigned_abs() < geom.line_size {
                    out.push(PlanDiagnostic {
                        pc,
                        block: block.id,
                        kind: CheckKind::RedundantPrefetch,
                        message: format!("hint {mem} duplicates the hint at {:#x}", first_pc.0),
                    });
                }
            } else {
                seen.push((group, shape, pc, mem.disp));
            }
        }
    }

    // Coverage: predicted-hot strided loads with no hint in their loop.
    for p in &preds {
        if p.sref.is_store
            || p.sref.filtered
            || p.verdict != Delinquency::PredictHot
            || !matches!(p.sref.class, StaticClass::ConstantStride(_))
        {
            continue;
        }
        let group = group_of(p.sref.block);
        let shape = ExprShape::of(&p.sref.mem);
        let covered = seen.iter().any(|(g, sh, _, _)| *g == group && *sh == shape);
        if !covered {
            // The heuristic prediction can be wrong; a proven AlwaysMiss
            // verdict cannot, so say when the candidate is confirmed.
            let confirmed = if verdict_of(p.sref.pc) == Some(Verdict::AlwaysMiss) {
                "; must-analysis confirms it misses every iteration"
            } else {
                ""
            };
            out.push(PlanDiagnostic {
                pc: p.sref.pc,
                block: p.sref.block,
                kind: CheckKind::MissedCandidate,
                message: format!(
                    "predicted-hot load {} (footprint {} bytes) has no covering hint{confirmed}",
                    p.sref.mem,
                    p.footprint.unwrap_or(0)
                ),
            });
        }
    }

    out.sort_by(|a, b| {
        (a.pc, a.kind, a.block)
            .cmp(&(b.pc, b.kind, b.block))
            .then_with(|| a.message.cmp(&b.message))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanEntry, PrefetchPlan};
    use crate::rewrite::inject_prefetches;
    use umi_ir::{ProgramBuilder, Width};

    fn geom() -> CacheGeometry {
        CacheGeometry {
            sets: 256,
            ways: 8,
            line_size: 64,
        }
    }

    fn geom_l2() -> CacheGeometry {
        CacheGeometry {
            sets: 2048,
            ways: 8,
            line_size: 64,
        }
    }

    fn check(p: &Program) -> Vec<PlanDiagnostic> {
        check_rewritten(p, &geom(), &geom_l2(), 0.10)
    }

    /// A hot streaming loop: load [esi]; esi += 64, 64K iterations.
    fn hot_stream() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry())
            .movi(Reg::ECX, 0)
            .alloc(Reg::ESI, 64 * 65_537)
            .jmp(body);
        pb.block(body)
            .load(Reg::EAX, Reg::ESI + 0, Width::W8)
            .addi(Reg::ESI, 64)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 65_536)
            .br_lt(body, done);
        pb.block(done).ret();
        pb.finish()
    }

    fn load_pc(p: &Program) -> Pc {
        p.blocks
            .iter()
            .flat_map(|b| b.iter_with_pc())
            .find(|(_, i)| i.is_load())
            .map(|(pc, _)| pc)
            .expect("program has a load")
    }

    fn kinds(diags: &[PlanDiagnostic]) -> Vec<CheckKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    fn rewrite_with(p: &Program, stride: i64, distance: i64) -> Program {
        let plan = PrefetchPlan::from_entries([(
            load_pc(p),
            PlanEntry {
                stride,
                distance_bytes: distance,
            },
        )]);
        inject_prefetches(p, &plan)
    }

    #[test]
    fn a_well_planned_rewrite_is_clean() {
        let rewritten = rewrite_with(&hot_stream(), 64, 2048);
        assert_eq!(check(&rewritten), Vec::new());
    }

    #[test]
    fn uncovered_hot_load_is_a_missed_candidate() {
        let diags = check(&hot_stream());
        assert_eq!(kinds(&diags), vec![CheckKind::MissedCandidate]);
        assert_eq!(diags[0].severity(), Severity::Warning);
        assert_eq!(diags[0].pc, load_pc(&hot_stream()));
        // The line-stride sweep is a provable AlwaysMiss, so the warning
        // carries the must-analysis confirmation.
        assert!(
            diags[0].message.contains("confirms it misses"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn unprovable_missed_candidate_is_not_confirmed() {
        // Sub-line stride: every line is touched 8 times, so the load is
        // Persistent-shaped, not AlwaysMiss — the prediction stays a
        // prediction.
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry())
            .movi(Reg::ECX, 0)
            .alloc(Reg::ESI, 8 * 65_537)
            .jmp(body);
        pb.block(body)
            .load(Reg::EAX, Reg::ESI + 0, Width::W8)
            .addi(Reg::ESI, 8)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 65_536)
            .br_lt(body, done);
        pb.block(done).ret();
        let _ = f;
        let diags = check(&pb.finish());
        assert_eq!(kinds(&diags), vec![CheckKind::MissedCandidate]);
        assert!(
            !diags[0].message.contains("confirms"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn page_overreach_is_unsafe() {
        let rewritten = rewrite_with(&hot_stream(), 64, PAGE_BYTES as i64 + 64);
        let diags = check(&rewritten);
        assert_eq!(kinds(&diags), vec![CheckKind::UnsafePrefetch]);
        assert_eq!(diags[0].severity(), Severity::Error);
    }

    #[test]
    fn orphan_hint_is_unsafe() {
        // A hand-planted hint whose expression guards nothing: the only
        // load uses ESI, the hint uses EDI.
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        pb.block(f.entry())
            .alloc(Reg::ESI, 4096)
            .prefetch(Reg::EDI + 256)
            .load(Reg::EAX, Reg::ESI + 0, Width::W8)
            .ret();
        let _ = f;
        let diags = check(&pb.finish());
        assert_eq!(kinds(&diags), vec![CheckKind::UnsafePrefetch]);
        assert!(diags[0].message.contains("guards no following load"));
    }

    #[test]
    fn wrong_direction_is_a_stride_mismatch() {
        // The loop walks forward by 64; the hint reaches backward.
        let rewritten = rewrite_with(&hot_stream(), 64, -2048);
        let diags = check(&rewritten);
        assert_eq!(kinds(&diags), vec![CheckKind::StrideMismatch]);
        assert!(diags[0].message.contains("against the provable stride"));
    }

    #[test]
    fn short_distance_is_a_stride_mismatch() {
        let rewritten = rewrite_with(&hot_stream(), 64, 64);
        let diags = check(&rewritten);
        assert_eq!(kinds(&diags), vec![CheckKind::StrideMismatch]);
        assert!(diags[0].message.contains("minimum"));
    }

    #[test]
    fn loop_invariant_target_is_a_stride_mismatch() {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry())
            .movi(Reg::ECX, 0)
            .alloc(Reg::ESI, 4096)
            .jmp(body);
        pb.block(body)
            .prefetch(Reg::ESI + 256)
            .load(Reg::EAX, Reg::ESI + 0, Width::W8)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 64)
            .br_lt(body, done);
        pb.block(done).ret();
        let _ = f;
        let diags = check(&pb.finish());
        // The invariant load also trips the zero-stride IR lint, but this
        // checker reports the plan side: a stationary prefetch target —
        // which the must-analysis additionally proves always resident,
        // so the same hint draws the pointless-prefetch warning.
        assert_eq!(
            kinds(&diags),
            vec![CheckKind::StrideMismatch, CheckKind::PointlessPrefetch]
        );
        assert!(diags[0].message.contains("loop-invariant"));
        assert_eq!(diags[1].severity(), Severity::Warning);
        assert!(diags[1].message.contains("provably hits L1"));
    }

    #[test]
    fn duplicate_hint_in_a_loop_is_redundant() {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry())
            .movi(Reg::ECX, 0)
            .alloc(Reg::ESI, 64 * 65_537)
            .jmp(body);
        pb.block(body)
            .prefetch(Reg::ESI + 2048)
            .prefetch(Reg::ESI + 2080) // 32 bytes on: same line, same loop
            .load(Reg::EAX, Reg::ESI + 0, Width::W8)
            .addi(Reg::ESI, 64)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 65_536)
            .br_lt(body, done);
        pb.block(done).ret();
        let _ = f;
        let diags = check(&pb.finish());
        assert_eq!(kinds(&diags), vec![CheckKind::RedundantPrefetch]);
        assert_eq!(diags[0].severity(), Severity::Error);
    }

    #[test]
    fn distinct_hints_a_line_apart_are_not_redundant() {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry())
            .movi(Reg::ECX, 0)
            .alloc(Reg::ESI, 64 * 65_537)
            .jmp(body);
        pb.block(body)
            .prefetch(Reg::ESI + 2048)
            .prefetch(Reg::ESI + 2112) // a full line on: distinct target
            .load(Reg::EAX, Reg::ESI + 0, Width::W8)
            .addi(Reg::ESI, 64)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 65_536)
            .br_lt(body, done);
        pb.block(done).ret();
        let _ = f;
        assert_eq!(check(&pb.finish()), Vec::new());
    }

    #[test]
    fn diagnostics_are_deterministic_and_sorted() {
        let rewritten = rewrite_with(&hot_stream(), 64, 64);
        let a = check(&rewritten);
        let b = check(&rewritten);
        assert_eq!(a, b);
        let keys: Vec<_> = a.iter().map(|d| (d.pc, d.kind, d.block)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
