//! A fully static prefetch planner — the compiler-side competitor the
//! paper's dynamic-vs-static comparison needs.
//!
//! Dynamic UMI earns its plan with a profiling pass: mini-simulations
//! label delinquent loads, online stride detection picks the pattern,
//! and [`PrefetchPlan::from_report`] turns both into displacements. This
//! module produces a plan from *analysis alone* — no instruction is ever
//! executed:
//!
//! * **candidates** — loads whose `(pc, load)` group the static
//!   miss-bound composer ([`umi_analyze::compose_program`]) labels hot,
//!   either by an absint-backed proof (miss-ratio lower bound above the
//!   delinquency floor) or by the affine heuristic, *and* whose address
//!   the affine classifier proves constant-stride;
//! * **distance** — a static latency model: cover the memory round-trip
//!   ([`PENTIUM4_MEMORY_CYCLES`]) assuming one cycle per instruction of
//!   the load's block per iteration, i.e. `refs = ceil(mem_cycles /
//!   block_len)`, then clamp `stride × refs` to the same
//!   [`MIN_PREFETCH_DISTANCE_BYTES`]..[`PAGE_BYTES`] window the dynamic
//!   planner uses (sign preserved for descending sweeps).
//!
//! The output feeds the existing [`inject_prefetches`] rewriting path
//! unchanged, so the `table_staticplan` study can run static and dynamic
//! plans through the identical machinery and attribute every cycle of
//! difference to plan *content*, not plumbing.
//!
//! [`inject_prefetches`]: crate::inject_prefetches

use crate::plan::{PlanEntry, PrefetchPlan};
use std::collections::BTreeMap;
use umi_analyze::{
    classify_program, compose_program, CacheGeometry, Delinquency, StaticClass, StaticReport,
};
use umi_cache::{MIN_PREFETCH_DISTANCE_BYTES, PAGE_BYTES, PENTIUM4_MEMORY_CYCLES};
use umi_ir::{Pc, Program};

/// One statically planned prefetch, with the provenance the study and
/// lint passes report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticPlanEntry {
    /// The planned load.
    pub pc: Pc,
    /// Statically proven reference stride in bytes.
    pub stride: i64,
    /// References of lookahead the latency model chose.
    pub distance_refs: i64,
    /// The clamped displacement actually injected.
    pub distance_bytes: i64,
    /// Whether the hot label was an absint/trip-count proof (else the
    /// affine heuristic).
    pub proven: bool,
}

/// The static planner's full output: the plan plus the per-load choices
/// and the composed report they were drawn from.
#[derive(Clone, Debug)]
pub struct StaticPlanReport {
    /// Planned loads, stably ordered by pc.
    pub entries: Vec<StaticPlanEntry>,
    /// The whole-program miss-bound composition the candidates came from.
    pub report: StaticReport,
}

impl StaticPlanReport {
    /// The plan in the shape [`inject_prefetches`] consumes.
    ///
    /// [`inject_prefetches`]: crate::inject_prefetches
    pub fn plan(&self) -> PrefetchPlan {
        PrefetchPlan::from_entries(self.entries.iter().map(|e| {
            (
                e.pc,
                PlanEntry {
                    stride: e.stride,
                    distance_bytes: e.distance_bytes,
                },
            )
        }))
    }
}

/// Plans prefetches from static analysis alone (see module docs).
///
/// `hot_miss_floor` is the delinquency floor shared with the dynamic
/// profiler, so the two plans disagree only where the *evidence*
/// differs.
pub fn static_prefetch_plan(
    program: &Program,
    l1: &CacheGeometry,
    l2: &CacheGeometry,
    hot_miss_floor: f64,
) -> StaticPlanReport {
    let report = compose_program(program, l1, l2, hot_miss_floor);

    // Stride per hot load pc: every load site at the pc must agree on a
    // single proven constant stride, else the pc is unplannable.
    let mut strides: BTreeMap<Pc, Option<i64>> = BTreeMap::new();
    for r in classify_program(program) {
        if r.is_store {
            continue;
        }
        let s = match r.class {
            StaticClass::ConstantStride(s) if s != 0 => Some(s),
            _ => None,
        };
        strides
            .entry(r.pc)
            .and_modify(|cur| {
                if *cur != s {
                    *cur = None;
                }
            })
            .or_insert(s);
    }

    let mut block_len: BTreeMap<Pc, usize> = BTreeMap::new();
    for block in &program.blocks {
        for i in 0..block.insns.len() {
            block_len.insert(block.insn_pc(i), block.insns.len());
        }
    }

    let mut entries = Vec::new();
    for d in &report.delinquency {
        if d.is_store || d.label != Delinquency::PredictHot {
            continue;
        }
        let Some(Some(stride)) = strides.get(&d.pc).copied() else {
            continue;
        };
        // One cycle per instruction of the surrounding block per
        // iteration: how many references ahead covers a memory miss.
        let len = block_len.get(&d.pc).copied().unwrap_or(1).max(1) as u64;
        let refs = PENTIUM4_MEMORY_CYCLES.div_ceil(len) as i64;
        let raw = stride.saturating_mul(refs);
        let magnitude = raw
            .unsigned_abs()
            .clamp(MIN_PREFETCH_DISTANCE_BYTES, PAGE_BYTES) as i64;
        entries.push(StaticPlanEntry {
            pc: d.pc,
            stride,
            distance_refs: refs,
            distance_bytes: magnitude * raw.signum(),
            proven: d.proven,
        });
    }
    entries.sort_by_key(|e| e.pc);

    StaticPlanReport { entries, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umi_ir::{ProgramBuilder, Reg, Width};

    const L1: CacheGeometry = CacheGeometry {
        sets: 32,
        ways: 4,
        line_size: 64,
    };
    const L2: CacheGeometry = CacheGeometry {
        sets: 1024,
        ways: 8,
        line_size: 64,
    };

    fn plan_of(p: &Program) -> StaticPlanReport {
        static_prefetch_plan(p, &L1, &L2, 0.10)
    }

    /// stride-64 sweep over 100 lines: proven AlwaysMiss → planned.
    #[test]
    fn proven_delinquent_sweep_is_planned_with_model_distance() {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let exit = pb.new_block();
        pb.block(f.entry())
            .alloc(Reg::ESI, 64 * 100)
            .movi(Reg::ECX, 0)
            .jmp(body);
        pb.block(body)
            .load(Reg::EAX, Reg::ESI + (Reg::ECX, 8), Width::W8)
            .addi(Reg::ECX, 8)
            .cmpi(Reg::ECX, 800)
            .br_lt(body, exit);
        pb.block(exit).ret();
        let rep = plan_of(&pb.finish());
        assert_eq!(rep.entries.len(), 1);
        let e = rep.entries[0];
        assert_eq!(e.stride, 64);
        assert!(e.proven, "AlwaysMiss × exact trips is a hot proof");
        // 3-insn body at 1 cycle/insn: ceil(250/3) = 84 refs; 84 × 64
        // overshoots a page, so the clamp caps the displacement.
        assert_eq!(e.distance_refs, 84);
        assert_eq!(e.distance_bytes, 4096);
        // And the PrefetchPlan view carries the same displacement.
        assert_eq!(rep.plan().get(e.pc).unwrap().distance_bytes, 4096);
    }

    #[test]
    fn invariant_and_irregular_loads_are_never_planned() {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let exit = pb.new_block();
        pb.block(f.entry())
            .alloc(Reg::ESI, 4096)
            .alloc(Reg::R13, 4096)
            .movi(Reg::ECX, 0)
            .jmp(body);
        pb.block(body)
            .load(Reg::EAX, Reg::ESI + 0, Width::W8) // invariant: cold
            .load(Reg::R13, Reg::R13 + 0, Width::W8) // chase: no stride
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 100)
            .br_lt(body, exit);
        pb.block(exit).ret();
        let rep = plan_of(&pb.finish());
        assert!(rep.entries.is_empty());
        assert!(rep.plan().is_empty());
    }

    #[test]
    fn small_strides_get_the_minimum_window() {
        // stride 8 over a big buffer: heuristically hot (line-open rate
        // 1/8 > 0.10) but not proven (sub-line stride defeats absint).
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let exit = pb.new_block();
        pb.block(f.entry())
            .alloc(Reg::ESI, 8 * 4096)
            .movi(Reg::ECX, 0)
            .jmp(body);
        pb.block(body)
            .load(Reg::EAX, Reg::ESI + (Reg::ECX, 1), Width::W8)
            .addi(Reg::ECX, 8)
            .cmpi(Reg::ECX, 8 * 4096)
            .br_lt(body, exit);
        pb.block(exit).ret();
        let rep = plan_of(&pb.finish());
        assert_eq!(rep.entries.len(), 1);
        let e = rep.entries[0];
        assert!(!e.proven);
        // ceil(250/3) × 8 = 672 bytes, already above the 128-byte floor.
        assert_eq!(e.distance_bytes, 672);
    }
}
