//! End-to-end experiment runners: native, DBI, UMI, and UMI + software
//! prefetching, each over a simulated hardware platform.
//!
//! These are the measurement procedures behind Figures 2–6; the
//! `umi-bench` binaries are thin tables over these functions.

use crate::plan::PrefetchPlan;
use crate::rewrite::inject_prefetches;
use umi_core::{UmiConfig, UmiReport, UmiRuntime};
use umi_dbi::{CostModel, DbiRuntime, DbiStats};
use umi_hw::{HwCounters, Machine, Platform, PrefetchSetting};
use umi_ir::Program;
use umi_vm::Vm;

/// The outcome of one measured run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total running time in cycles (base + memory stalls + any runtime
    /// overhead).
    pub cycles: u64,
    /// Hardware-counter values.
    pub counters: HwCounters,
    /// Instructions retired.
    pub insns: u64,
}

impl RunOutcome {
    /// Running time relative to a baseline (>1 = slower).
    pub fn relative_to(&self, baseline: &RunOutcome) -> f64 {
        self.cycles as f64 / baseline.cycles as f64
    }
}

/// Native execution: the program straight through the machine model.
pub fn run_native(program: &Program, platform: Platform, setting: PrefetchSetting) -> RunOutcome {
    let mut machine = Machine::new(platform, setting);
    let mut vm = Vm::new(program);
    let r = vm.run(&mut machine, u64::MAX);
    assert!(r.finished, "workload {} did not finish", program.name);
    RunOutcome {
        cycles: machine.total_cycles(r.stats.insns),
        counters: machine.counters(),
        insns: r.stats.insns,
    }
}

/// Native execution replayed from a captured trace: the recorded access
/// stream straight through the machine model, no interpretation. The
/// outcome is byte-identical to [`run_native`] on the traced program —
/// the machine model only consumes the access stream and the retired
/// instruction count, both of which the trace reproduces exactly.
pub fn run_native_trace(
    trace: &umi_trace::ExecTrace,
    platform: Platform,
    setting: PrefetchSetting,
) -> RunOutcome {
    let mut machine = Machine::new(platform, setting);
    let summary = trace.replay_into(&mut machine);
    RunOutcome {
        cycles: machine.total_cycles(summary.stats.insns),
        counters: machine.counters(),
        insns: summary.stats.insns,
    }
}

/// Execution under the DBI alone (the first bar of Figure 2).
pub fn run_dbi(
    program: &Program,
    platform: Platform,
    setting: PrefetchSetting,
) -> (RunOutcome, DbiStats) {
    let mut machine = Machine::new(platform, setting);
    let mut rt = DbiRuntime::new(program, CostModel::default());
    let stats = rt.run(&mut machine, u64::MAX);
    assert!(rt.finished(), "workload {} did not finish", program.name);
    (
        RunOutcome {
            cycles: machine.total_cycles(stats.insns) + rt.overhead_cycles(),
            counters: machine.counters(),
            insns: stats.insns,
        },
        rt.stats(),
    )
}

/// Execution under DBI + UMI introspection (the second/third bars of
/// Figure 2, depending on the config's sampling mode).
pub fn run_umi(
    program: &Program,
    config: UmiConfig,
    platform: Platform,
    setting: PrefetchSetting,
) -> (RunOutcome, UmiReport) {
    let mut machine = Machine::new(platform, setting);
    let mut umi = UmiRuntime::new(program, config);
    let report = umi.run(&mut machine, u64::MAX);
    assert!(umi.finished(), "workload {} did not finish", program.name);
    (
        RunOutcome {
            cycles: machine.total_cycles(report.vm_stats.insns)
                + report.dbi_overhead_cycles
                + report.umi_overhead_cycles,
            counters: machine.counters(),
            insns: report.vm_stats.insns,
        },
        report,
    )
}

/// The full §8 pipeline: introspect, plan, inject software prefetches, and
/// measure the optimized program (still under introspection, as in the
/// paper's single online run — see DESIGN.md for the two-pass
/// substitution).
///
/// Returns the optimized outcome, the profiling report, and the plan.
pub fn run_umi_prefetch(
    program: &Program,
    config: UmiConfig,
    platform: Platform,
    setting: PrefetchSetting,
    distance_refs: i64,
) -> (RunOutcome, UmiReport, PrefetchPlan) {
    let (_, report) = run_umi(program, config.clone(), platform.clone(), setting);
    let plan = PrefetchPlan::from_report(&report, distance_refs);
    let optimized = inject_prefetches(program, &plan);
    let (outcome, _) = run_umi(&optimized, config, platform, setting);
    (outcome, report, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umi_workloads::{build, Scale};

    #[test]
    fn umi_costs_more_than_dbi_costs_more_than_native() {
        let p = build("179.art", Scale::Test).expect("art");
        let native = run_native(&p, Platform::pentium4(), PrefetchSetting::Off);
        let (dbi, _) = run_dbi(&p, Platform::pentium4(), PrefetchSetting::Off);
        let (umi, report) = run_umi(
            &p,
            UmiConfig::no_sampling(),
            Platform::pentium4(),
            PrefetchSetting::Off,
        );
        assert!(dbi.cycles >= native.cycles);
        assert!(umi.cycles >= dbi.cycles);
        assert!(report.umi_overhead_cycles > 0);
        // Architectural behaviour identical everywhere.
        assert_eq!(native.insns, dbi.insns);
        assert_eq!(native.insns, umi.insns);
        assert_eq!(native.counters.l2_refs, umi.counters.l2_refs);
    }

    #[test]
    fn software_prefetch_speeds_up_strided_misses() {
        let p = build("ft", Scale::Test).expect("ft");
        let native = run_native(&p, Platform::pentium4(), PrefetchSetting::Off);
        let (opt, report, plan) = run_umi_prefetch(
            &p,
            UmiConfig::no_sampling(),
            Platform::pentium4(),
            PrefetchSetting::Off,
            32,
        );
        assert!(
            !report.predicted.is_empty(),
            "ft's stream must be predicted"
        );
        assert!(!plan.is_empty(), "ft has a perfect stride");
        assert!(
            opt.counters.l2_misses * 2 < native.counters.l2_misses,
            "prefetching must hide most misses: {} vs {}",
            opt.counters.l2_misses,
            native.counters.l2_misses
        );
        assert!(
            opt.cycles < native.cycles,
            "optimized {} should beat native {} despite introspection overhead",
            opt.cycles,
            native.cycles
        );
    }

    #[test]
    fn pointer_chase_offers_no_prefetching_opportunity() {
        let p = build("181.mcf", Scale::Test).expect("mcf");
        let (_, report, plan) = run_umi_prefetch(
            &p,
            UmiConfig::no_sampling(),
            Platform::pentium4(),
            PrefetchSetting::Off,
            32,
        );
        assert!(
            !report.predicted.is_empty(),
            "mcf's chase load is delinquent"
        );
        assert!(plan.is_empty(), "a random chase has no stride to prefetch");
    }

    #[test]
    fn k7_ignores_hw_prefetch_requests() {
        let p = build("179.art", Scale::Test).expect("art");
        let off = run_native(&p, Platform::k7(), PrefetchSetting::Off);
        let full = run_native(&p, Platform::k7(), PrefetchSetting::Full);
        assert_eq!(off.counters.l2_misses, full.counters.l2_misses);
    }
}
