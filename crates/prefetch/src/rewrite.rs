//! Program rewriting: planting prefetch instructions.

use crate::plan::PrefetchPlan;
use umi_analyze::{analyze_program, innermost_loop_map, Cfg};
use umi_ir::{BasicBlock, Insn, MemRef, Pc, Program, CODE_BASE};

/// Coalescing radius for duplicate hints, in bytes. Both modeled
/// platforms (Pentium 4 and K7 L2) use 64-byte lines, so two hints of
/// the same address expression closer than this fetch the same line.
const COALESCE_LINE_BYTES: i64 = 64;

/// Rewrites `program`, inserting a `prefetch` instruction immediately
/// before every load in the plan. The prefetch reuses the load's address
/// expression with the plan's distance added to the displacement, so it
/// targets `EA + stride × distance` at runtime — the paper's "inject
/// prefetch requests" trace rewriting, applied at program granularity
/// (see DESIGN.md).
///
/// Hints are coalesced per innermost loop: when two planned loads share
/// an address expression and their prefetch targets land within one
/// cache line (`COALESCE_LINE_BYTES`, 64 bytes), only the first is
/// planted —
/// the line arrives once either way, and the duplicate would be pure
/// overhead (flagged by [`crate::check_rewritten`] as
/// `RedundantPrefetch` if planted).
///
/// Instruction addresses are re-laid out; the returned program is
/// self-consistent but its `Pc`s differ from the original's wherever
/// instructions were inserted.
pub fn inject_prefetches(program: &Program, plan: &PrefetchPlan) -> Program {
    let cfg = Cfg::build(program);
    let funcs = analyze_program(program, &cfg);
    let innermost = innermost_loop_map(program.blocks.len(), &funcs);

    let mut blocks = Vec::with_capacity(program.blocks.len());
    let mut addr = CODE_BASE;
    let mut injected = 0usize;
    /// One already-planted hint: its loop-or-block group plus the full
    /// target expression. Program order makes the survivor deterministic.
    struct Planted {
        group: (usize, usize),
        target: MemRef,
    }
    let mut planted: Vec<Planted> = Vec::new();
    for block in &program.blocks {
        let group = innermost[block.id.index()].unwrap_or((usize::MAX, block.id.index()));
        let mut insns = Vec::with_capacity(block.insns.len());
        for (pc, insn) in block.iter_with_pc() {
            if let Some(entry) = plan.get(pc) {
                if let Some(mem) = prefetchable_ref(insn) {
                    let target = MemRef {
                        disp: mem.disp.wrapping_add(entry.distance_bytes),
                        ..mem
                    };
                    let duplicate = planted.iter().any(|p| {
                        p.group == group
                            && p.target.base == target.base
                            && p.target.index == target.index
                            && target.disp.wrapping_sub(p.target.disp).unsigned_abs()
                                < COALESCE_LINE_BYTES as u64
                    });
                    if !duplicate {
                        planted.push(Planted { group, target });
                        insns.push(Insn::Prefetch { mem: target });
                        injected += 1;
                    }
                }
            }
            insns.push(insn.clone());
        }
        let new_block = BasicBlock {
            id: block.id,
            addr: Pc(addr),
            insns,
            terminator: block.terminator.clone(),
        };
        addr += new_block.byte_size();
        blocks.push(new_block);
    }
    let _ = injected;
    Program {
        blocks,
        funcs: program.funcs.clone(),
        data: program.data.clone(),
        entry: program.entry,
        name: program.name.clone(),
    }
}

/// The first profilable (unfiltered) load reference of an instruction —
/// the one the profile columns recorded, hence the one the stride belongs
/// to.
fn prefetchable_ref(insn: &Insn) -> Option<MemRef> {
    insn.loads()
        .into_iter()
        .map(|(m, _)| m)
        .find(|m| !m.is_filtered())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanEntry;
    use umi_ir::{ProgramBuilder, Reg, Width};
    use umi_vm::{CountSink, NullSink, Vm};

    fn stream_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry())
            .movi(Reg::ECX, 0)
            .alloc(Reg::ESI, 1 << 16)
            .jmp(body);
        pb.block(body)
            .load(Reg::EAX, Reg::ESI + (Reg::ECX, 8), Width::W8)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 1000)
            .br_lt(body, done);
        pb.block(done).ret();
        pb.finish()
    }

    fn load_pc(p: &Program) -> Pc {
        p.blocks
            .iter()
            .flat_map(|b| b.iter_with_pc())
            .find(|(_, i)| i.is_load())
            .map(|(pc, _)| pc)
            .expect("program has a load")
    }

    #[test]
    fn injects_before_planned_load_only() {
        let p = stream_program();
        let plan = PrefetchPlan::from_entries([(
            load_pc(&p),
            PlanEntry {
                stride: 8,
                distance_bytes: 256,
            },
        )]);
        let rewritten = inject_prefetches(&p, &plan);
        assert_eq!(rewritten.validate(), Ok(()));
        let prefetches: Vec<_> = rewritten
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|i| matches!(i, Insn::Prefetch { .. }))
            .collect();
        assert_eq!(prefetches.len(), 1);
        match prefetches[0] {
            Insn::Prefetch { mem } => assert_eq!(mem.disp, 256),
            _ => unreachable!(),
        }
        assert_eq!(rewritten.static_insns(), p.static_insns() + 1);
    }

    #[test]
    fn rewritten_program_computes_the_same_result() {
        let p = stream_program();
        let plan = PrefetchPlan::from_entries([(
            load_pc(&p),
            PlanEntry {
                stride: 8,
                distance_bytes: 128,
            },
        )]);
        let rewritten = inject_prefetches(&p, &plan);
        let mut a = Vm::new(&p);
        let mut b = Vm::new(&rewritten);
        a.run(&mut NullSink, u64::MAX);
        b.run(&mut NullSink, u64::MAX);
        assert_eq!(a.reg(Reg::ECX), b.reg(Reg::ECX));
        assert_eq!(a.stats().loads, b.stats().loads, "prefetch is not a load");
    }

    #[test]
    fn prefetch_accesses_run_ahead_of_demand() {
        let p = stream_program();
        let pc = load_pc(&p);
        let plan = PrefetchPlan::from_entries([(
            pc,
            PlanEntry {
                stride: 8,
                distance_bytes: 512,
            },
        )]);
        let rewritten = inject_prefetches(&p, &plan);
        let mut sink = CountSink::default();
        Vm::new(&rewritten).run(&mut sink, u64::MAX);
        assert_eq!(sink.prefetches, 1000, "one prefetch per iteration");
    }

    #[test]
    fn same_line_hints_coalesce_within_a_loop() {
        // Two planned loads off the same base, 8 bytes apart: their
        // prefetch targets share a line, so only the first hint lands.
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry())
            .movi(Reg::ECX, 0)
            .alloc(Reg::ESI, 1 << 16)
            .jmp(body);
        pb.block(body)
            .load(Reg::EAX, Reg::ESI + 0, Width::W8)
            .load(Reg::EBX, Reg::ESI + 8, Width::W8)
            .addi(Reg::ESI, 16)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 1000)
            .br_lt(body, done);
        pb.block(done).ret();
        let p = pb.finish();
        let _ = f;
        let pcs: Vec<Pc> = p
            .blocks
            .iter()
            .flat_map(|b| b.iter_with_pc())
            .filter(|(_, i)| i.is_load())
            .map(|(pc, _)| pc)
            .collect();
        let entry = PlanEntry {
            stride: 16,
            distance_bytes: 256,
        };
        let plan = PrefetchPlan::from_entries(pcs.iter().map(|&pc| (pc, entry)));
        let rewritten = inject_prefetches(&p, &plan);
        let prefetches: Vec<_> = rewritten
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|i| matches!(i, Insn::Prefetch { .. }))
            .collect();
        assert_eq!(prefetches.len(), 1, "second same-line hint coalesces");
        match prefetches[0] {
            Insn::Prefetch { mem } => assert_eq!(mem.disp, 256),
            _ => unreachable!(),
        }
    }

    #[test]
    fn far_apart_hints_both_survive() {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry())
            .movi(Reg::ECX, 0)
            .alloc(Reg::ESI, 1 << 16)
            .jmp(body);
        pb.block(body)
            .load(Reg::EAX, Reg::ESI + 0, Width::W8)
            .load(Reg::EBX, Reg::ESI + 4096, Width::W8)
            .addi(Reg::ESI, 16)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 1000)
            .br_lt(body, done);
        pb.block(done).ret();
        let p = pb.finish();
        let _ = f;
        let pcs: Vec<Pc> = p
            .blocks
            .iter()
            .flat_map(|b| b.iter_with_pc())
            .filter(|(_, i)| i.is_load())
            .map(|(pc, _)| pc)
            .collect();
        let entry = PlanEntry {
            stride: 16,
            distance_bytes: 256,
        };
        let plan = PrefetchPlan::from_entries(pcs.iter().map(|&pc| (pc, entry)));
        let rewritten = inject_prefetches(&p, &plan);
        let prefetches = rewritten
            .blocks
            .iter()
            .flat_map(|b| &b.insns)
            .filter(|i| matches!(i, Insn::Prefetch { .. }))
            .count();
        assert_eq!(prefetches, 2, "distinct-line hints both land");
    }

    #[test]
    fn empty_plan_is_identity_modulo_layout() {
        let p = stream_program();
        let rewritten = inject_prefetches(&p, &PrefetchPlan::default());
        assert_eq!(rewritten.static_insns(), p.static_insns());
        assert_eq!(rewritten.blocks.len(), p.blocks.len());
    }
}
