//! # umi-prefetch — the example runtime optimization (paper §8)
//!
//! "We illustrate an example use scenario for UMI by implementing a simple
//! stride prefetching optimization in software. The optimization issues L2
//! prefetch requests for loads labeled as delinquent by the introspection
//! phase."
//!
//! The pipeline:
//!
//! 1. run UMI over the program ([`umi_core::UmiRuntime`]) to obtain the
//!    predicted delinquent loads and their reference strides;
//! 2. [`PrefetchPlan::from_report`] selects the profitable loads and picks
//!    a prefetch distance;
//! 3. [`inject_prefetches`] rewrites the program, planting a `prefetch`
//!    instruction in front of each planned load (the reproduction's
//!    equivalent of DynamoRIO's trace rewriting — see DESIGN.md for the
//!    substitution note);
//! 4. the [`harness`] runners measure running time and L2 misses under
//!    every combination of software and hardware prefetching, which is
//!    exactly what Figures 3–6 plot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
pub mod harness;
mod plan;
mod rewrite;
mod staticplan;

pub use check::{check_rewritten, CheckKind, PlanDiagnostic};
pub use plan::{PlanEntry, PrefetchPlan};
pub use rewrite::inject_prefetches;
pub use staticplan::{static_prefetch_plan, StaticPlanEntry, StaticPlanReport};
