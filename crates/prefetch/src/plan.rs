//! Prefetch planning from introspection results.

use std::collections::HashMap;
use umi_cache::{MIN_PREFETCH_DISTANCE_BYTES, PAGE_BYTES};
use umi_core::UmiReport;
use umi_ir::Pc;

/// One planned prefetch: how far ahead of a delinquent load to fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanEntry {
    /// The detected reference stride in bytes.
    pub stride: i64,
    /// The displacement added to the load's address expression,
    /// `stride × distance` (in bytes).
    pub distance_bytes: i64,
}

/// The set of loads to prefetch, keyed by instruction address.
#[derive(Clone, Debug, Default)]
pub struct PrefetchPlan {
    entries: HashMap<Pc, PlanEntry>,
}

impl PrefetchPlan {
    /// Builds a plan from a UMI report: every predicted delinquent load
    /// with a confidently detected stride is prefetched `distance_refs`
    /// references ahead.
    ///
    /// The paper notes `ft` "was very sensitive to the choice of prefetch
    /// distances" and that UMI picked a near-optimal one; the default of
    /// 32 references covers a memory latency of a few hundred cycles at
    /// typical loop-iteration costs.
    pub fn from_report(report: &UmiReport, distance_refs: i64) -> PrefetchPlan {
        let mut entries = HashMap::new();
        for pc in &report.predicted {
            if let Some(info) = report.strides.get(pc) {
                if info.confidence >= 0.5 && info.stride != 0 {
                    // Clamp to a useful window: at least two cache lines
                    // ahead (a byte-stride copy would otherwise prefetch
                    // its own line), at most a page.
                    let raw = info.stride.saturating_mul(distance_refs);
                    let magnitude = raw
                        .unsigned_abs()
                        .clamp(MIN_PREFETCH_DISTANCE_BYTES, PAGE_BYTES)
                        as i64;
                    entries.insert(
                        *pc,
                        PlanEntry {
                            stride: info.stride,
                            distance_bytes: magnitude * raw.signum(),
                        },
                    );
                }
            }
        }
        PrefetchPlan { entries }
    }

    /// A plan with explicit entries (for tests and ablations).
    pub fn from_entries(entries: impl IntoIterator<Item = (Pc, PlanEntry)>) -> PrefetchPlan {
        PrefetchPlan {
            entries: entries.into_iter().collect(),
        }
    }

    /// The entry for a load, if planned.
    pub fn get(&self, pc: Pc) -> Option<PlanEntry> {
        self.entries.get(&pc).copied()
    }

    /// Number of planned loads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no load is planned (no prefetching opportunity — the case
    /// for 21 of the paper's 32 benchmarks).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the planned loads.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, PlanEntry)> + '_ {
        self.entries.iter().map(|(pc, e)| (*pc, *e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap as Map, HashSet};
    use umi_core::StrideInfo;

    fn report(predicted: &[u64], strides: &[(u64, i64, f64)]) -> UmiReport {
        UmiReport {
            program_name: "t".into(),
            umi_miss_ratio: 0.2,
            predicted: predicted.iter().map(|p| Pc(*p)).collect::<HashSet<_>>(),
            strides: strides
                .iter()
                .map(|&(pc, stride, confidence)| {
                    (
                        Pc(pc),
                        StrideInfo {
                            stride,
                            confidence,
                            samples: 100,
                        },
                    )
                })
                .collect::<Map<_, _>>(),
            patterns: Map::new(),
            per_pc: umi_cache::PerPcStats::new(),
            profiles_collected: 0,
            analyzer_invocations: 0,
            cache_flushes: 0,
            instrumented_traces: 0,
            profiled_ops: 0,
            static_loads: 0,
            static_stores: 0,
            umi_overhead_cycles: 0,
            dbi_overhead_cycles: 0,
            samples_taken: 0,
            vm_stats: Default::default(),
            dbi_stats: Default::default(),
        }
    }

    #[test]
    fn plans_only_confident_strided_predictions() {
        let r = report(
            &[1, 2, 3, 4],
            &[
                (1, 8, 1.0),  // planned
                (2, 64, 0.4), // confidence too low
                (3, 0, 1.0),  // zero stride
                              // 4 has no stride info at all
            ],
        );
        let plan = PrefetchPlan::from_report(&r, 32);
        assert_eq!(plan.len(), 1);
        let e = plan.get(Pc(1)).expect("planned");
        assert_eq!(e.stride, 8);
        assert_eq!(e.distance_bytes, 256);
        assert!(plan.get(Pc(2)).is_none());
    }

    #[test]
    fn negative_strides_plan_backward() {
        let r = report(&[1], &[(1, -64, 0.9)]);
        let plan = PrefetchPlan::from_report(&r, 16);
        assert_eq!(plan.get(Pc(1)).expect("planned").distance_bytes, -1024);
    }

    #[test]
    fn unpredicted_loads_are_never_planned() {
        let r = report(&[], &[(1, 8, 1.0)]);
        assert!(PrefetchPlan::from_report(&r, 32).is_empty());
    }
}
