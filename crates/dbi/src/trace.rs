//! Traces and NET-style trace construction.

use umi_ir::{BlockId, DecodedCache, Pc, Program};
use umi_vm::BlockExit;

/// Identifier of a trace in the [`TraceCache`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceId(pub u32);

impl TraceId {
    /// Index into the trace cache.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single-entry, multiple-exits sequence of basic blocks, the unit UMI
/// selects, instruments and optimizes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Identifier.
    pub id: TraceId,
    /// Component blocks; `blocks[0]` is the entry (head).
    pub blocks: Vec<BlockId>,
    /// Decoded trace body: per component block, the static memory-access
    /// slot pcs one execution emits (snapshot from the VM's
    /// [`DecodedCache`] at insertion). Lets clients pre-instrument the
    /// trace — align per-slot state once, instead of resolving every
    /// dynamic access by pc. Empty for traces inserted without a decoded
    /// cache ([`TraceCache::insert`]).
    pub access_pcs: Vec<Box<[Pc]>>,
}

impl Trace {
    /// The trace head (single entry).
    pub fn head(&self) -> BlockId {
        self.blocks[0]
    }

    /// Number of component blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Traces always contain at least their head.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total static instructions in the trace (bodies only), given the
    /// program.
    pub fn static_insns(&self, program: &Program) -> usize {
        self.blocks
            .iter()
            .map(|b| program.block(*b).insns.len())
            .sum()
    }
}

/// The trace cache: completed traces plus a head-block index.
///
/// Block ids are dense program indices, so the head index is a flat
/// `Vec` grown on demand — the dispatcher consults it on every block
/// transition that is not already inside a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceCache {
    traces: Vec<Trace>,
    /// `by_head[block]` is the trace headed by that block, if any.
    by_head: Vec<Option<TraceId>>,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// The trace with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn trace(&self, id: TraceId) -> &Trace {
        &self.traces[id.index()]
    }

    /// The trace headed by `block`, if any.
    #[inline]
    pub fn trace_at_head(&self, block: BlockId) -> Option<TraceId> {
        self.by_head.get(block.index()).copied().flatten()
    }

    /// Whether `block` heads a trace.
    #[inline]
    pub fn is_head(&self, block: BlockId) -> bool {
        self.trace_at_head(block).is_some()
    }

    /// Number of traces built.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no trace has been built yet.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterates over all traces.
    pub fn iter(&self) -> impl Iterator<Item = &Trace> + '_ {
        self.traces.iter()
    }

    /// Inserts a completed trace (first head registration wins).
    pub fn insert(&mut self, blocks: Vec<BlockId>) -> TraceId {
        self.insert_with_pcs(blocks, Vec::new())
    }

    /// Inserts a completed trace with its decoded body: the per-block
    /// access-slot pcs are snapshotted from `decoded`, so the stored
    /// trace is pre-lowered and clients never re-derive the slot layout.
    pub fn insert_decoded(&mut self, blocks: Vec<BlockId>, decoded: &DecodedCache) -> TraceId {
        let pcs = blocks
            .iter()
            .map(|&b| decoded.block(b).access_pcs.clone())
            .collect();
        self.insert_with_pcs(blocks, pcs)
    }

    fn insert_with_pcs(&mut self, blocks: Vec<BlockId>, access_pcs: Vec<Box<[Pc]>>) -> TraceId {
        debug_assert!(!blocks.is_empty());
        let id = TraceId(self.traces.len() as u32);
        let head = blocks[0].index();
        if head >= self.by_head.len() {
            self.by_head.resize(head + 1, None);
        }
        self.by_head[head].get_or_insert(id);
        self.traces.push(Trace {
            id,
            blocks,
            access_pcs,
        });
        id
    }
}

/// NET-style ("next executing tail") trace construction, the scheme
/// DynamoRIO uses: targets of backward or indirect branches accumulate an
/// execution counter; when one saturates at the hot threshold, the blocks
/// executed next are recorded until a trace-ending condition, and the
/// result is promoted into the trace cache.
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    /// Execution counters for potential trace heads, indexed by block
    /// (dense program indices; grown on demand).
    head_counters: Vec<u32>,
    /// Blocks recorded so far when in recording mode.
    recording: Option<Vec<BlockId>>,
    /// Hot threshold (DynamoRIO's default is 50).
    hot_threshold: u32,
    /// Maximum blocks per trace.
    max_blocks: usize,
}

impl Default for TraceBuilder {
    fn default() -> TraceBuilder {
        TraceBuilder::new(50, 32)
    }
}

impl TraceBuilder {
    /// Creates a builder with the given hot threshold and trace-length cap.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(hot_threshold: u32, max_blocks: usize) -> TraceBuilder {
        assert!(hot_threshold > 0 && max_blocks > 0);
        TraceBuilder {
            head_counters: Vec::new(),
            recording: None,
            hot_threshold,
            max_blocks,
        }
    }

    /// Whether a trace is currently being recorded.
    pub fn is_recording(&self) -> bool {
        self.recording.is_some()
    }

    /// Observes that `exit` transferred control out of `exit.block`, where
    /// the *previous* transfer entered it. `entered_backward` says whether
    /// the entering edge was a backward or indirect transfer (the NET
    /// head heuristic). Returns a completed block list when a trace closes.
    ///
    /// `cache` is consulted so recording stops at existing trace heads.
    pub fn observe(
        &mut self,
        program: &Program,
        cache: &TraceCache,
        exit: &BlockExit,
        entered_backward: bool,
    ) -> Option<Vec<BlockId>> {
        let block = exit.block;

        if let Some(rec) = &mut self.recording {
            rec.push(block);
            let done = rec.len() >= self.max_blocks
                || exit.kind.is_indirect()
                || exit.next.is_none()
                // Loop closure: backward transfer (to the head or elsewhere).
                || exit
                    .next
                    .is_some_and(|n| program.block(n).addr <= program.block(block).addr)
                // Stop at an existing trace head ("trace head" rule).
                || exit.next.is_some_and(|n| cache.is_head(n));
            if done {
                let rec = self.recording.take().expect("recording");
                self.reset_counter(rec[0]);
                return Some(rec);
            }
            return None;
        }

        // Not recording: is this block a potential head getting hot?
        if entered_backward && !cache.is_head(block) {
            let bi = block.index();
            if bi >= self.head_counters.len() {
                self.head_counters.resize(bi + 1, 0);
            }
            self.head_counters[bi] += 1;
            if self.head_counters[bi] >= self.hot_threshold {
                // Hot: start recording *with this execution's tail*,
                // beginning from this block. Apply the trace-ending rules
                // to this first element too (single-block loops close at
                // their own backward branch).
                self.recording = Some(vec![block]);
                let done = exit.kind.is_indirect()
                    || exit.next.is_none()
                    || exit
                        .next
                        .is_some_and(|n| program.block(n).addr <= program.block(block).addr)
                    || exit.next.is_some_and(|n| cache.is_head(n));
                if done {
                    let rec = self.recording.take().expect("recording");
                    self.reset_counter(rec[0]);
                    return Some(rec);
                }
            }
        }
        None
    }

    fn reset_counter(&mut self, block: BlockId) {
        if let Some(c) = self.head_counters.get_mut(block.index()) {
            *c = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umi_ir::{ProgramBuilder, Reg};
    use umi_vm::{ExitKind, NullSink, Vm};

    /// Drives a program and returns (cache, executions) after running it
    /// with a plain trace-builder loop.
    fn build_traces(program: &Program, threshold: u32) -> TraceCache {
        let mut cache = TraceCache::new();
        let mut tb = TraceBuilder::new(threshold, 32);
        let mut vm = Vm::new(program);
        let mut entered_backward = true; // program entry counts as a head edge
        let mut sink = NullSink;
        while !vm.is_finished() {
            let exit = vm.step_block(&mut sink);
            if let Some(blocks) = tb.observe(program, &cache, &exit, entered_backward) {
                cache.insert(blocks);
            }
            entered_backward = exit.kind.is_indirect()
                || exit.kind == ExitKind::Call
                || exit.kind == ExitKind::Ret
                || match exit.next {
                    Some(n) => program.block(n).addr <= program.block(exit.block).addr,
                    None => false,
                };
        }
        cache
    }

    fn loop_program(iters: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry()).movi(Reg::ECX, 0).jmp(body);
        pb.block(body)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, iters)
            .br_lt(body, done);
        pb.block(done).ret();
        pb.finish()
    }

    #[test]
    fn hot_loop_head_becomes_a_trace() {
        let p = loop_program(1000);
        let cache = build_traces(&p, 50);
        assert_eq!(cache.len(), 1, "exactly one hot loop");
        let t = cache.trace(TraceId(0));
        assert_eq!(t.head(), BlockId(1), "loop body is the head");
        assert!(cache.is_head(BlockId(1)));
    }

    #[test]
    fn cold_loop_never_promotes() {
        let p = loop_program(10); // below the threshold of 50
        let cache = build_traces(&p, 50);
        assert!(cache.is_empty());
    }

    #[test]
    fn multi_block_loop_forms_multi_block_trace() {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let head = pb.new_block();
        let mid = pb.new_block();
        let tail = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry()).movi(Reg::ECX, 0).jmp(head);
        pb.block(head).addi(Reg::ECX, 1).jmp(mid);
        pb.block(mid).nop().jmp(tail);
        pb.block(tail).cmpi(Reg::ECX, 500).br_lt(head, done);
        pb.block(done).ret();
        let p = pb.finish();
        let cache = build_traces(&p, 50);
        assert_eq!(cache.len(), 1);
        let t = cache.trace(TraceId(0));
        assert_eq!(t.blocks, vec![head, mid, tail]);
        assert_eq!(t.static_insns(&p), 3);
    }

    #[test]
    fn trace_length_is_capped() {
        let tb = TraceBuilder::new(1, 4);
        assert!(tb.hot_threshold == 1 && tb.max_blocks == 4);
    }

    #[test]
    fn insert_decoded_snapshots_access_slots() {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let next = pb.new_block();
        pb.block(f.entry())
            .load(Reg::EAX, Reg::ESI + 0, umi_ir::Width::W8)
            .store(Reg::EDI + 8, Reg::EAX, umi_ir::Width::W8)
            .jmp(next);
        pb.block(next).nop().ret();
        let p = pb.finish();
        let decoded = umi_ir::DecodedCache::lower(&p);
        let mut cache = TraceCache::new();
        let id = cache.insert_decoded(vec![f.entry(), next], &decoded);
        let t = cache.trace(id);
        assert_eq!(t.access_pcs.len(), 2);
        assert_eq!(t.access_pcs[0].len(), 2, "load + store slots");
        assert_eq!(t.access_pcs[0][0], p.block(f.entry()).insn_pc(0));
        assert_eq!(t.access_pcs[0][1], p.block(f.entry()).insn_pc(1));
        assert!(t.access_pcs[1].is_empty(), "nop-only block has no slots");
        // Plain insert leaves the decoded body empty.
        let plain = cache.insert(vec![next]);
        assert!(cache.trace(plain).access_pcs.is_empty());
    }

    #[test]
    fn insert_first_head_wins() {
        let mut cache = TraceCache::new();
        let a = cache.insert(vec![BlockId(5), BlockId(6)]);
        let b = cache.insert(vec![BlockId(5)]);
        assert_ne!(a, b);
        assert_eq!(cache.trace_at_head(BlockId(5)), Some(a));
        assert_eq!(cache.iter().count(), 2);
    }
}
