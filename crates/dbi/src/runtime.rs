//! The code-cache dispatcher.

use crate::cost::CostModel;
use crate::trace::{TraceBuilder, TraceCache, TraceId};
use umi_ir::{MemAccess, Program};
use umi_trace::TraceWriter;
use umi_vm::{AccessSink, BlockExit, BlockSource, Vm, VmStats};

/// Execution statistics of the DBI layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbiStats {
    /// Blocks executed from the basic-block cache.
    pub blocks_from_bb_cache: u64,
    /// Blocks executed from the trace cache.
    pub blocks_from_trace_cache: u64,
    /// Blocks translated (copied into the code cache).
    pub blocks_translated: u64,
    /// Traces constructed.
    pub traces_built: u64,
    /// Entries into trace heads.
    pub trace_entries: u64,
    /// Dynamic indirect control transfers.
    pub indirect_branches: u64,
    /// Context switches into the runtime requested by the client.
    pub context_switches: u64,
}

impl DbiStats {
    /// Fraction of block executions served from the trace cache — the
    /// paper notes 176.gcc "spends less than 70% of its execution running
    /// from the trace cache" while most benchmarks exceed 95%.
    pub fn trace_cache_residency(&self) -> f64 {
        let total = self.blocks_from_bb_cache + self.blocks_from_trace_cache;
        if total == 0 {
            0.0
        } else {
            self.blocks_from_trace_cache as f64 / total as f64
        }
    }
}

/// What happened during one [`DbiRuntime::step`].
#[derive(Debug)]
pub struct StepInfo<'r> {
    /// The architectural block exit.
    pub exit: BlockExit,
    /// Trace context the block executed under (`None` = basic-block cache).
    pub trace: Option<TraceId>,
    /// Position of the executed block within that trace (0 = head;
    /// meaningless when `trace` is `None`).
    pub trace_pos: usize,
    /// Whether this step entered the head of that trace.
    pub entered_trace: bool,
    /// A trace completed by the builder during this step, if any.
    pub trace_created: Option<TraceId>,
    /// Memory accesses performed by the block, in order (borrowed from
    /// the VM's per-block batch buffer).
    pub accesses: &'r [MemAccess],
}

/// The DynamoRIO-like dispatcher: executes the program block by block,
/// builds traces from hot control flow, charges DBI overhead cycles, and
/// reports every step to the caller (the UMI layer).
///
/// Generic over the block supplier `X`: the live interpreter
/// ([`Vm`], the default) or a trace replay cursor — the dispatcher,
/// trace builder, and cost model behave identically for both, because
/// they only consume the [`BlockSource`] contract.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct DbiRuntime<'p, X: BlockSource<'p> = Vm<'p>> {
    exec: X,
    program: &'p Program,
    cache: TraceCache,
    builder: TraceBuilder,
    costs: CostModel,
    stats: DbiStats,
    overhead: u64,
    translated: Vec<bool>,
    /// Dense copy of each block's code address: the backward-edge test
    /// runs once per dispatched block, and loading it from the heap-
    /// scattered [`Program`] block structs cost a pointer chase per step.
    block_addrs: Vec<u64>,
    /// Trace context for the *next* block: (trace, position).
    next_ctx: Option<(TraceId, usize)>,
    /// Whether the edge into the next block was backward/indirect.
    entered_backward: bool,
    /// Optional capture hook: records every executed block and its
    /// access batch into a compact execution trace.
    tracer: Option<TraceWriter>,
}

impl<'p> DbiRuntime<'p> {
    /// Creates a runtime with the default NET parameters (hot threshold 50,
    /// 32-block traces).
    pub fn new(program: &'p Program, costs: CostModel) -> DbiRuntime<'p> {
        DbiRuntime::with_builder(program, costs, TraceBuilder::default())
    }

    /// Creates a runtime with a custom trace builder.
    pub fn with_builder(
        program: &'p Program,
        costs: CostModel,
        builder: TraceBuilder,
    ) -> DbiRuntime<'p> {
        DbiRuntime::from_source_with_builder(Vm::new(program), costs, builder)
    }

    /// The underlying VM (registers, memory, architectural stats).
    pub fn vm(&self) -> &Vm<'p> {
        &self.exec
    }
}

impl<'p, X: BlockSource<'p>> DbiRuntime<'p, X> {
    /// Creates a runtime over an arbitrary block supplier (e.g. a trace
    /// replay cursor) with the default NET parameters.
    pub fn from_source(exec: X, costs: CostModel) -> DbiRuntime<'p, X> {
        DbiRuntime::from_source_with_builder(exec, costs, TraceBuilder::default())
    }

    /// Creates a runtime over an arbitrary block supplier with a custom
    /// trace builder.
    pub fn from_source_with_builder(
        exec: X,
        costs: CostModel,
        builder: TraceBuilder,
    ) -> DbiRuntime<'p, X> {
        let program = exec.program();
        DbiRuntime {
            exec,
            program,
            cache: TraceCache::new(),
            builder,
            costs,
            stats: DbiStats::default(),
            overhead: 0,
            translated: vec![false; program.blocks.len()],
            block_addrs: program.blocks.iter().map(|b| b.addr.0).collect(),
            next_ctx: None,
            entered_backward: true, // program entry behaves like a head edge
            tracer: None,
        }
    }

    /// Attach a capture hook: from now on every executed block and its
    /// access batch are recorded into `writer`.
    pub fn attach_tracer(&mut self, writer: TraceWriter) {
        self.tracer = Some(writer);
    }

    /// Detach the capture hook, if any (typically at end of run, to
    /// seal the trace).
    pub fn take_tracer(&mut self) -> Option<TraceWriter> {
        self.tracer.take()
    }

    /// Whether the program has finished.
    pub fn finished(&self) -> bool {
        self.exec.is_finished()
    }

    /// Architectural statistics (instructions, loads, stores…).
    pub fn vm_stats(&self) -> VmStats {
        self.exec.stats()
    }

    /// The program under execution.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The trace cache.
    pub fn traces(&self) -> &TraceCache {
        &self.cache
    }

    /// DBI statistics.
    pub fn stats(&self) -> DbiStats {
        self.stats
    }

    /// Accumulated overhead cycles (DBI costs plus client charges).
    pub fn overhead_cycles(&self) -> u64 {
        self.overhead
    }

    /// Adds client-side overhead (instrumentation, analysis…) so that one
    /// accumulator holds all non-native cycles.
    pub fn charge(&mut self, cycles: u64) {
        self.overhead += cycles;
    }

    /// Charges one context switch between code cache and runtime.
    pub fn context_switch(&mut self) {
        self.stats.context_switches += 1;
        self.overhead += self.costs.context_switch;
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Executes one basic block under the dispatcher.
    ///
    /// # Panics
    ///
    /// Panics if the program already finished.
    pub fn step<S: AccessSink>(&mut self, sink: &mut S) -> StepInfo<'_> {
        let ctx = self.next_ctx;
        let in_trace = ctx.map(|(t, _)| t);
        let trace_pos = ctx.map_or(0, |(_, p)| p);
        let entering = matches!(ctx, Some((_, 0)));
        if entering {
            self.stats.trace_entries += 1;
        }

        // The VM buffers the block's accesses and batch-delivers them to
        // `sink`; the same buffer backs `StepInfo::accesses`, so no tee
        // copy is needed.
        let exit = self.exec.step_block(sink);
        if let Some(w) = self.tracer.as_mut() {
            w.record_block(exit.block, self.exec.block_accesses());
        }

        // --- cost accounting ---
        let bi = exit.block.index();
        if !self.translated[bi] {
            self.translated[bi] = true;
            self.stats.blocks_translated += 1;
            self.overhead += self.costs.block_translation;
        }
        if in_trace.is_some() {
            self.stats.blocks_from_trace_cache += 1;
            self.overhead = self.overhead.saturating_sub(self.costs.trace_layout_credit);
        } else {
            self.stats.blocks_from_bb_cache += 1;
            self.overhead += self.costs.bb_dispatch;
        }
        if exit.kind.is_indirect() {
            self.stats.indirect_branches += 1;
            self.overhead += self.costs.indirect_lookup;
        }

        // --- trace building (only while executing from the BB cache) ---
        let mut trace_created = None;
        if in_trace.is_none() {
            if let Some(blocks) =
                self.builder
                    .observe(self.program, &self.cache, &exit, self.entered_backward)
            {
                let id = self.cache.insert_decoded(blocks, self.exec.decoded());
                self.stats.traces_built += 1;
                self.overhead += self.costs.trace_build;
                trace_created = Some(id);
            }
        }

        // --- next trace context ---
        self.next_ctx = match exit.next {
            None => None,
            Some(next) => {
                let continued = ctx.and_then(|(tid, pos)| {
                    let tr = self.cache.trace(tid);
                    (tr.blocks.get(pos + 1) == Some(&next)).then_some((tid, pos + 1))
                });
                continued.or_else(|| self.cache.trace_at_head(next).map(|tid| (tid, 0)))
            }
        };

        // Head heuristic for the next edge: backward/indirect transfers and
        // trace exits feed head counters.
        let backward_edge = match exit.next {
            Some(next) => self.block_addrs[next.index()] <= self.block_addrs[bi],
            None => false,
        };
        let trace_exit = in_trace.is_some() && self.next_ctx.is_none();
        self.entered_backward = exit.kind.is_indirect()
            || matches!(exit.kind, umi_vm::ExitKind::Call | umi_vm::ExitKind::Ret)
            || backward_edge
            || trace_exit;

        StepInfo {
            exit,
            trace: in_trace,
            trace_pos,
            entered_trace: entering,
            trace_created,
            accesses: self.exec.block_accesses(),
        }
    }

    /// Runs the program to completion (or until `max_insns`), discarding
    /// step details. Returns the architectural stats.
    pub fn run<S: AccessSink>(&mut self, sink: &mut S, max_insns: u64) -> VmStats {
        while !self.finished() && self.exec.stats().insns < max_insns {
            let _ = self.step(sink);
        }
        self.exec.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use umi_ir::{ProgramBuilder, Reg, Width};
    use umi_vm::NullSink;

    fn loop_program(iters: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let body = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry())
            .movi(Reg::ECX, 0)
            .alloc(Reg::ESI, 8192)
            .jmp(body);
        pb.block(body)
            .load(Reg::EAX, Reg::ESI + (Reg::ECX, 8), Width::W8)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, iters)
            .br_lt(body, done);
        pb.block(done).ret();
        pb.finish()
    }

    #[test]
    fn execution_is_transparent() {
        // The DBI layer must not change architectural results.
        let p = loop_program(500);
        let mut plain = umi_vm::Vm::new(&p);
        plain.run(&mut NullSink, 1 << 20);
        let mut rt = DbiRuntime::new(&p, CostModel::default());
        let stats = rt.run(&mut NullSink, 1 << 20);
        assert_eq!(plain.reg(Reg::ECX), rt.vm().reg(Reg::ECX));
        assert_eq!(plain.stats(), stats);
    }

    #[test]
    fn hot_loop_executes_from_trace_cache() {
        let p = loop_program(10_000);
        let mut rt = DbiRuntime::new(&p, CostModel::default());
        rt.run(&mut NullSink, 1 << 24);
        let s = rt.stats();
        assert_eq!(s.traces_built, 1);
        assert!(
            s.trace_cache_residency() > 0.95,
            "residency {}",
            s.trace_cache_residency()
        );
        assert!(s.trace_entries > 9_000);
    }

    #[test]
    fn step_reports_trace_context_and_accesses() {
        let p = loop_program(10_000);
        let mut rt = DbiRuntime::new(&p, CostModel::default());
        let mut sink = NullSink;
        let mut saw_entered = false;
        let mut in_trace_accesses = 0u64;
        while !rt.finished() {
            let info = rt.step(&mut sink);
            if info.entered_trace {
                saw_entered = true;
                assert!(info.trace.is_some());
            }
            if info.trace.is_some() {
                in_trace_accesses += info.accesses.len() as u64;
            }
        }
        assert!(saw_entered);
        assert!(
            in_trace_accesses > 9_000,
            "loop loads observed inside the trace"
        );
    }

    #[test]
    fn overhead_accumulates_and_client_can_charge() {
        let p = loop_program(100);
        let mut rt = DbiRuntime::new(&p, CostModel::default());
        rt.run(&mut NullSink, 1 << 20);
        let base = rt.overhead_cycles();
        assert!(base > 0, "translation costs must appear");
        rt.charge(123);
        assert_eq!(rt.overhead_cycles(), base + 123);
        rt.context_switch();
        assert_eq!(rt.overhead_cycles(), base + 123 + rt.costs().context_switch);
        assert_eq!(rt.stats().context_switches, 1);
    }

    #[test]
    fn free_cost_model_still_builds_traces() {
        let p = loop_program(1_000);
        let mut rt = DbiRuntime::new(&p, CostModel::free());
        rt.run(&mut NullSink, 1 << 22);
        assert!(rt.stats().traces_built >= 1);
        assert_eq!(rt.overhead_cycles(), 0);
    }

    #[test]
    fn indirect_branches_are_counted() {
        let mut pb = ProgramBuilder::new();
        let f = pb.begin_func("main");
        let a = pb.new_block();
        let b = pb.new_block();
        let done = pb.new_block();
        pb.block(f.entry()).movi(Reg::ECX, 0).jmp(a);
        pb.block(a)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, 200)
            .br_ge(done, b);
        pb.block(b).jmp_ind(Reg::ECX, vec![a, a]);
        pb.block(done).ret();
        let p = pb.finish();
        let mut rt = DbiRuntime::new(&p, CostModel::default());
        rt.run(&mut NullSink, 1 << 20);
        assert!(rt.stats().indirect_branches >= 199);
    }
}
