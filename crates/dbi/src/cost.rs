//! The DBI overhead model.

/// Cycle costs of running under the binary-rewriting runtime.
///
/// Calibrated so that the whole-suite average DBI slowdown lands near the
/// paper's "less than 13%", dominated by indirect-branch lookups on
/// control-intensive code, with loop-dominated code close to (or slightly
/// better than) native thanks to trace layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// One-time cost of copying a basic block into the code cache.
    pub block_translation: u64,
    /// One-time cost of stitching blocks into a trace ("trace builder").
    pub trace_build: u64,
    /// Cost of each dynamic indirect control transfer (hash lookup instead
    /// of a direct branch).
    pub indirect_lookup: u64,
    /// Cost of every block-to-block transfer executed from the basic-block
    /// cache (not yet promoted to a trace): exit stub + dispatch check.
    pub bb_dispatch: u64,
    /// Cycles *saved* per block transfer executed inside a trace, from
    /// removed unconditional branches and better layout.
    pub trace_layout_credit: u64,
    /// Cost of a context switch between the code cache and the runtime
    /// (used by clients for analyzer invocations, trace swaps, …).
    pub context_switch: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            block_translation: 250,
            trace_build: 1_200,
            indirect_lookup: 12,
            bb_dispatch: 3,
            trace_layout_credit: 1,
            context_switch: 400,
        }
    }
}

impl CostModel {
    /// A zero-cost model (for tests isolating architectural behaviour).
    pub fn free() -> CostModel {
        CostModel {
            block_translation: 0,
            trace_build: 0,
            indirect_lookup: 0,
            bb_dispatch: 0,
            trace_layout_credit: 0,
            context_switch: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nonzero_and_free_is_zero() {
        let d = CostModel::default();
        assert!(d.block_translation > 0 && d.indirect_lookup > 0);
        let f = CostModel::free();
        assert_eq!(
            f.block_translation
                + f.trace_build
                + f.indirect_lookup
                + f.bb_dispatch
                + f.trace_layout_credit
                + f.context_switch,
            0
        );
    }
}
