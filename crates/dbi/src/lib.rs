//! # umi-dbi — a DynamoRIO-like runtime code-manipulation substrate
//!
//! The UMI prototype is built on DynamoRIO (paper §3): the application's
//! code is copied block by block into a *basic block cache*; frequently
//! executed block sequences are stitched into single-entry multiple-exit
//! *traces* held in a *trace cache*; all control flow is interposed on,
//! which is what makes instrumentation possible; and the *trace builder*
//! "implicitly serves as the UMI region selector".
//!
//! This crate reproduces that machinery over the `umi-vm` interpreter:
//!
//! * [`DbiRuntime`] steps the VM one block at a time, observing every
//!   control transfer exactly like a code-cache dispatcher would;
//! * a NET-style [`TraceBuilder`] promotes hot targets of backward/indirect
//!   branches into [`Trace`]s;
//! * a [`CostModel`] charges cycles for the things a real DBI pays for —
//!   block translation, trace construction, indirect-branch lookups,
//!   context switches — and credits the small layout benefit of traces
//!   (the paper notes "some benchmarks actually run faster with DynamoRIO
//!   because they benefit from code placement and trace optimizations").
//!
//! The UMI layer (`umi-core`) drives the runtime through [`DbiRuntime::step`]
//! and inspects each [`StepInfo`] to implement region selection,
//! instrumentation and analysis triggering.
//!
//! # Example
//!
//! ```
//! use umi_dbi::{CostModel, DbiRuntime};
//! use umi_ir::{ProgramBuilder, Reg};
//! use umi_vm::NullSink;
//!
//! let mut pb = ProgramBuilder::new();
//! let main = pb.begin_func("main");
//! let body = pb.new_block();
//! let done = pb.new_block();
//! pb.block(main.entry()).movi(Reg::ECX, 0).jmp(body);
//! pb.block(body).addi(Reg::ECX, 1).cmpi(Reg::ECX, 1000).br_lt(body, done);
//! pb.block(done).ret();
//! let program = pb.finish();
//!
//! let mut rt = DbiRuntime::new(&program, CostModel::default());
//! let mut sink = NullSink;
//! while !rt.finished() {
//!     let _info = rt.step(&mut sink);
//! }
//! assert!(rt.stats().traces_built >= 1, "the hot loop must become a trace");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod runtime;
mod trace;

pub use cost::CostModel;
pub use runtime::{DbiRuntime, DbiStats, StepInfo};
pub use trace::{Trace, TraceBuilder, TraceCache, TraceId};
