//! # umi-workloads — the synthetic benchmark suite
//!
//! The paper evaluates UMI on 32 benchmarks — the full SPEC CPU2000 suite
//! (14 CFP + 12 CINT), five Olden codes and `ft` from Ptrdist — plus a
//! 15-program SPEC CPU2006 subset (Table 5). The original binaries and
//! reference inputs are not reproducible here, so each benchmark is
//! replaced by a *synthetic workload in the virtual ISA* whose memory
//! behaviour mirrors the original's published character:
//!
//! * loop-intensive floating-point codes → array streams and stencils;
//! * `181.mcf`, Olden → pointer chasing over randomized linked structures;
//! * `176.gcc`, `186.crafty`, `252.eon` → control-intensive state machines
//!   with small, cache-resident data (very low miss ratios, many indirect
//!   branches, poor trace-cache residency);
//! * `164.gzip` → a byte-by-byte block copy whose single hot load causes
//!   almost all misses;
//! * `ft` → wide-stride streaming over a graph too large for L2 (the
//!   paper's highest miss ratio, 49.63%).
//!
//! Every workload is deterministic: tables are generated with a seeded
//! RNG, and all control flow is data-driven from those tables.
//!
//! # Example
//!
//! ```
//! use umi_workloads::{build, Scale};
//! use umi_vm::{NullSink, Vm};
//!
//! let program = build("181.mcf", Scale::Test).expect("known workload");
//! let mut vm = Vm::new(&program);
//! let result = vm.run(&mut NullSink, u64::MAX);
//! assert!(result.finished);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decorate;
pub mod kernels;
mod rng;
mod suite;

pub use decorate::add_abi_noise;
pub use rng::TableRng;
pub use suite::{all32, build, cfp2000, cint2000, olden, spec2006, Scale, Suite, WorkloadSpec};
