//! The named benchmark suites (paper §6, §6.3).

use crate::kernels::{
    chase, compute, control, copy, hash, phases, spmv, stencil, stream, tree, ChaseParams,
    ComputeParams, ControlParams, CopyParams, HashParams, PhasesParams, SpmvParams, StencilParams,
    StreamParams, TreeParams,
};
use umi_ir::Program;

/// Benchmark group, mirroring the paper's correlation groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2000 floating point (loop-intensive).
    Cfp2000,
    /// SPEC CPU2000 integer (control-intensive).
    Cint2000,
    /// Olden + Ptrdist `ft` ("which includes ft for convenience").
    Olden,
    /// SPEC CPU2006 floating point subset (Table 5).
    Cfp2006,
    /// SPEC CPU2006 integer subset (Table 5).
    Cint2006,
}

/// Workload size: `Bench` is the experiment scale; `Test` shrinks the
/// iteration counts (not the footprints, which set the miss character) so
/// test suites stay fast.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Reduced iteration counts for unit/integration tests.
    Test,
    /// Full experiment scale (the default).
    #[default]
    Bench,
}

impl Scale {
    /// Scales an iteration-type quantity.
    fn n(self, base: usize) -> usize {
        match self {
            Scale::Bench => base,
            Scale::Test => (base / 8).max(1),
        }
    }

    /// Scales a pass count, keeping at least two so that data reuse —
    /// which several of UMI's accounting mechanisms depend on — exists at
    /// every scale.
    fn passes(self, base: usize) -> usize {
        self.n(base).max(2)
    }

    /// Scales a reuse-bearing footprint — pointer-structure node counts
    /// and copy lengths — by 4 at test scale, so the shortened runs still
    /// revisit their data while staying beyond the L2 capacity.
    fn footprint(self, base: usize) -> usize {
        match self {
            Scale::Bench => base,
            Scale::Test => (base / 4).max(64),
        }
    }
}

/// A named benchmark: its suite plus a builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Benchmark name, e.g. `"181.mcf"`.
    pub name: &'static str,
    /// Group it belongs to.
    pub suite: Suite,
}

impl WorkloadSpec {
    /// Builds the workload program at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if the spec was constructed with an unknown name (cannot
    /// happen through the suite constructors).
    pub fn build(&self, scale: Scale) -> Program {
        build(self.name, scale).expect("spec names are always known")
    }
}

/// Builds a workload by name, or `None` for an unknown name.
#[allow(clippy::too_many_lines)]
pub fn build(name: &str, s: Scale) -> Option<Program> {
    let p = match name {
        // === SPEC CFP2000 ===
        "168.wupwise" => stream(
            name,
            StreamParams {
                elems: 96 * 1024,
                passes: s.passes(4),
                stride: 1,
                stores: true,
                compute_nops: 2,
            },
        ),
        "171.swim" => stencil(
            name,
            StencilParams {
                width: 640,
                height: 400,
                sweeps: s.passes(8),
            },
        ),
        "172.mgrid" => stencil(
            name,
            StencilParams {
                width: 448,
                height: 448,
                sweeps: s.passes(8),
            },
        ),
        "173.applu" => stencil(
            name,
            StencilParams {
                width: 512,
                height: 288,
                sweeps: s.passes(8),
            },
        ),
        "177.mesa" => compute(
            name,
            ComputeParams {
                iters: s.n(400_000),
                nops: 6,
                slots: 4096,
            },
        ),
        "178.galgel" => stream(
            name,
            StreamParams {
                elems: 64 * 1024,
                passes: s.passes(6),
                stride: 1,
                stores: true,
                compute_nops: 1,
            },
        ),
        "179.art" => stream(
            name,
            StreamParams {
                elems: 512 * 1024,
                passes: s.passes(2),
                stride: 1,
                stores: false,
                compute_nops: 0,
            },
        ),
        "183.equake" => spmv(
            name,
            SpmvParams {
                rows: 8 * 1024,
                nnz: 8,
                x_elems: 1 << 18,
                passes: s.passes(2),
            },
        ),
        "187.facerec" => stream(
            name,
            StreamParams {
                elems: 48 * 1024,
                passes: s.passes(6),
                stride: 1,
                stores: false,
                compute_nops: 3,
            },
        ),
        "188.ammp" => chase(
            name,
            ChaseParams {
                nodes: s.footprint(16 * 1024),
                node_bytes: 64,
                steps: s.n(300_000),
                shuffled: true,
                payload_loads: 1,
            },
        ),
        "189.lucas" => stream(
            name,
            StreamParams {
                elems: 256 * 1024,
                passes: s.passes(2),
                stride: 2,
                stores: false,
                compute_nops: 1,
            },
        ),
        "191.fma3d" => stencil(
            name,
            StencilParams {
                width: 384,
                height: 384,
                sweeps: s.passes(8),
            },
        ),
        "200.sixtrack" => compute(
            name,
            ComputeParams {
                iters: s.n(400_000),
                nops: 4,
                slots: 8192,
            },
        ),
        "301.apsi" => stencil(
            name,
            StencilParams {
                width: 512,
                height: 320,
                sweeps: s.passes(8),
            },
        ),

        // === SPEC CINT2000 ===
        "164.gzip" => copy(
            name,
            CopyParams {
                bytes: s.footprint(3 << 20),
                passes: s.passes(2),
                compute_nops: 1,
            },
        ),
        "175.vpr" => tree(
            name,
            TreeParams {
                nodes: 128 * 1024,
                descents: s.n(40_000),
                sum_passes: s.n(1),
            },
        ),
        "176.gcc" => control(
            name,
            ControlParams {
                hot_states: 16,
                cold_states: 12288,
                cold_per_16: 12,
                steps: s.n(400_000),
                table_slots: 512,
                work_nops: 12,
            },
        ),
        "181.mcf" => chase(
            name,
            ChaseParams {
                nodes: s.footprint(64 * 1024),
                node_bytes: 64,
                steps: s.n(400_000),
                shuffled: true,
                payload_loads: 1,
            },
        ),
        "186.crafty" => control(
            name,
            ControlParams {
                hot_states: 24,
                cold_states: 0,
                cold_per_16: 0,
                steps: s.n(400_000),
                table_slots: 512,
                work_nops: 18,
            },
        ),
        "197.parser" => phases(
            name,
            PhasesParams {
                sentences: s.n(120_000),
                variants: 16,
                slots: 2048,
                max_trip: 5,
            },
        ),
        "252.eon" => compute(
            name,
            ComputeParams {
                iters: s.n(400_000),
                nops: 8,
                slots: 4096,
            },
        ),
        "253.perlbmk" => hash(
            name,
            HashParams {
                slots: 8 * 1024,
                ops: s.n(400_000),
                stores: true,
                compute_nops: 2,
            },
        ),
        "254.gap" => hash(
            name,
            HashParams {
                slots: 32 * 1024,
                ops: s.n(400_000),
                stores: false,
                compute_nops: 1,
            },
        ),
        "255.vortex" => hash(
            name,
            HashParams {
                slots: 16 * 1024,
                ops: s.n(300_000),
                stores: true,
                compute_nops: 2,
            },
        ),
        "256.bzip2" => copy(
            name,
            CopyParams {
                bytes: s.footprint(2 << 20),
                passes: s.passes(2),
                compute_nops: 0,
            },
        ),
        "300.twolf" => hash(
            name,
            HashParams {
                slots: 64 * 1024,
                ops: s.n(400_000),
                stores: true,
                compute_nops: 1,
            },
        ),

        // === Olden + Ptrdist ===
        "em3d" => chase(
            name,
            ChaseParams {
                nodes: s.footprint(32 * 1024),
                node_bytes: 64,
                steps: s.n(300_000),
                shuffled: true,
                payload_loads: 2,
            },
        ),
        "health" => chase(
            name,
            ChaseParams {
                nodes: s.footprint(24 * 1024),
                node_bytes: 64,
                steps: s.n(250_000),
                shuffled: true,
                payload_loads: 1,
            },
        ),
        "mst" => hash(
            name,
            HashParams {
                slots: 128 * 1024,
                ops: s.n(300_000),
                stores: false,
                compute_nops: 1,
            },
        ),
        "treeadd" => tree(
            name,
            TreeParams {
                nodes: 64 * 1024,
                descents: 0,
                sum_passes: s.passes(8),
            },
        ),
        "tsp" => tree(
            name,
            TreeParams {
                nodes: 48 * 1024,
                descents: s.n(60_000),
                sum_passes: s.n(1),
            },
        ),
        "ft" => stream(
            name,
            StreamParams {
                elems: 768 * 1024,
                passes: s.passes(2),
                stride: 8,
                stores: false,
                compute_nops: 0,
            },
        ),

        // === SPEC CFP2006 subset (Table 5) ===
        "433.milc" => stream(
            name,
            StreamParams {
                elems: 384 * 1024,
                passes: s.passes(2),
                stride: 1,
                stores: true,
                compute_nops: 0,
            },
        ),
        "435.gromacs" => compute(
            name,
            ComputeParams {
                iters: s.n(400_000),
                nops: 5,
                slots: 8192,
            },
        ),
        "444.namd" => compute(
            name,
            ComputeParams {
                iters: s.n(400_000),
                nops: 4,
                slots: 16384,
            },
        ),
        "450.soplex" => spmv(
            name,
            SpmvParams {
                rows: 8 * 1024,
                nnz: 8,
                x_elems: 1 << 19,
                passes: s.passes(2),
            },
        ),
        "453.povray" => compute(
            name,
            ComputeParams {
                iters: s.n(350_000),
                nops: 7,
                slots: 4096,
            },
        ),
        "470.lbm" => stream(
            name,
            StreamParams {
                elems: 640 * 1024,
                passes: s.passes(2),
                stride: 1,
                stores: true,
                compute_nops: 0,
            },
        ),
        "482.sphinx3" => hash(
            name,
            HashParams {
                slots: 256 * 1024,
                ops: s.n(350_000),
                stores: false,
                compute_nops: 1,
            },
        ),

        // === SPEC CINT2006 subset (Table 5) ===
        "445.gobmk" => control(
            name,
            ControlParams {
                hot_states: 40,
                cold_states: 1024,
                cold_per_16: 4,
                steps: s.n(350_000),
                table_slots: 512,
                work_nops: 14,
            },
        ),
        "456.hmmer" => stream(
            name,
            StreamParams {
                elems: 32 * 1024,
                passes: s.passes(10),
                stride: 1,
                stores: true,
                compute_nops: 1,
            },
        ),
        "458.sjeng" => control(
            name,
            ControlParams {
                hot_states: 32,
                cold_states: 256,
                cold_per_16: 2,
                steps: s.n(350_000),
                table_slots: 512,
                work_nops: 16,
            },
        ),
        "462.libquantum" => stream(
            name,
            StreamParams {
                elems: 512 * 1024,
                passes: s.passes(2),
                stride: 1,
                stores: true,
                compute_nops: 0,
            },
        ),
        "464.h264ref" => copy(
            name,
            CopyParams {
                bytes: s.footprint(2500 << 10),
                passes: s.passes(2),
                compute_nops: 1,
            },
        ),
        "471.omnetpp" => chase(
            name,
            ChaseParams {
                nodes: s.footprint(48 * 1024),
                node_bytes: 64,
                steps: s.n(300_000),
                shuffled: true,
                payload_loads: 1,
            },
        ),
        "473.astar" => tree(
            name,
            TreeParams {
                nodes: 96 * 1024,
                descents: s.n(50_000),
                sum_passes: 0,
            },
        ),
        "483.xalancbmk" => phases(
            name,
            PhasesParams {
                sentences: s.n(100_000),
                variants: 12,
                slots: 4096,
                max_trip: 6,
            },
        ),

        _ => return None,
    };
    // Every workload carries x86-like stack/static reference noise so the
    // instrumentor's operation filter has realistic work to do (§4.1).
    let mut p = p;
    crate::decorate::add_abi_noise(&mut p, name);
    Some(p)
}

fn specs(names: &'static [&'static str], suite: Suite) -> Vec<WorkloadSpec> {
    names
        .iter()
        .map(|name| WorkloadSpec { name, suite })
        .collect()
}

/// The 14 SPEC CFP2000 workloads.
pub fn cfp2000() -> Vec<WorkloadSpec> {
    specs(
        &[
            "168.wupwise",
            "171.swim",
            "172.mgrid",
            "173.applu",
            "177.mesa",
            "178.galgel",
            "179.art",
            "183.equake",
            "187.facerec",
            "188.ammp",
            "189.lucas",
            "191.fma3d",
            "200.sixtrack",
            "301.apsi",
        ],
        Suite::Cfp2000,
    )
}

/// The 12 SPEC CINT2000 workloads.
pub fn cint2000() -> Vec<WorkloadSpec> {
    specs(
        &[
            "164.gzip",
            "175.vpr",
            "176.gcc",
            "181.mcf",
            "186.crafty",
            "197.parser",
            "252.eon",
            "253.perlbmk",
            "254.gap",
            "255.vortex",
            "256.bzip2",
            "300.twolf",
        ],
        Suite::Cint2000,
    )
}

/// The Olden workloads plus Ptrdist `ft`.
pub fn olden() -> Vec<WorkloadSpec> {
    specs(
        &["em3d", "health", "mst", "treeadd", "tsp", "ft"],
        Suite::Olden,
    )
}

/// All 32 workloads of the main evaluation (CFP2000 + CINT2000 + Olden).
pub fn all32() -> Vec<WorkloadSpec> {
    let mut v = cfp2000();
    v.extend(cint2000());
    v.extend(olden());
    v
}

/// The 15 SPEC CPU2006 workloads of Table 5.
pub fn spec2006() -> Vec<WorkloadSpec> {
    let mut v = specs(
        &[
            "433.milc",
            "435.gromacs",
            "444.namd",
            "450.soplex",
            "453.povray",
            "470.lbm",
            "482.sphinx3",
        ],
        Suite::Cfp2006,
    );
    v.extend(specs(
        &[
            "445.gobmk",
            "456.hmmer",
            "458.sjeng",
            "462.libquantum",
            "464.h264ref",
            "471.omnetpp",
            "473.astar",
            "483.xalancbmk",
        ],
        Suite::Cint2006,
    ));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use umi_vm::{NullSink, Vm};

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(cfp2000().len(), 14);
        assert_eq!(cint2000().len(), 12);
        assert_eq!(olden().len(), 6);
        assert_eq!(all32().len(), 32);
        assert_eq!(spec2006().len(), 15);
    }

    #[test]
    fn all_names_are_unique_and_buildable() {
        let mut names = std::collections::HashSet::new();
        for spec in all32().into_iter().chain(spec2006()) {
            assert!(names.insert(spec.name), "duplicate {}", spec.name);
            assert!(
                build(spec.name, Scale::Test).is_some(),
                "{} unknown",
                spec.name
            );
        }
        assert_eq!(names.len(), 47);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build("999.nonesuch", Scale::Test).is_none());
    }

    #[test]
    fn every_workload_terminates_at_test_scale() {
        for spec in all32().into_iter().chain(spec2006()) {
            let p = spec.build(Scale::Test);
            assert_eq!(p.validate(), Ok(()), "{}", spec.name);
            let mut vm = Vm::new(&p);
            let r = vm.run(&mut NullSink, 100_000_000);
            assert!(r.finished, "{} did not finish", spec.name);
            assert!(r.stats.loads > 0, "{} performs no loads", spec.name);
        }
    }

    #[test]
    fn bench_scale_is_larger_than_test_scale() {
        let t = build("181.mcf", Scale::Test).map(|p| {
            let mut vm = Vm::new(&p);
            vm.run(&mut NullSink, u64::MAX).stats.insns
        });
        let b = build("181.mcf", Scale::Bench).map(|p| {
            let mut vm = Vm::new(&p);
            vm.run(&mut NullSink, u64::MAX).stats.insns
        });
        assert!(b.unwrap() >= t.unwrap() * 2);
    }
}
