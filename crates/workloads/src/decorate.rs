//! ABI-style reference noise.
//!
//! Real x86 binaries are full of stack traffic (spills, locals through
//! `ebp`/`esp`) and static-address references — which is exactly why the
//! paper's operation filter removes ~80% of candidate memory operations
//! (§4.1, Table 3). The raw kernels compute through registers, so this
//! pass decorates every memory-touching block with:
//!
//! * `ebp`-relative spill/reload pairs through the reserved scratch
//!   register `R12` (stack-classified, filtered by UMI);
//! * occasional absolute loads of a small "globals" area into `R13`
//!   (static-classified, filtered by UMI).
//!
//! The noise is deterministic per workload name, cache-hot (a few stack
//! lines), and touches only `R12`/`R13`, which no kernel uses.

use crate::rng::TableRng;
use umi_ir::{Insn, MemRef, Operand, Program, Reg, Width};

/// Number of 8-byte scratch slots below `ebp` used by the spill noise.
const SPILL_SLOTS: i64 = 8;

/// Slots of the shared "global array" (8 bytes each): 128 KB — larger
/// than either platform's L1, comfortably inside both L2s. Its scattered
/// accesses are the L1-miss/L2-hit traffic that real programs have in
/// abundance, and which keeps hardware L2 miss *ratios* away from the
/// degenerate 0/1 endpoints.
const GLOBAL_SLOTS: u64 = 16 * 1024;

/// Decorates `program` in place with stack and static reference noise;
/// the mix is chosen so that roughly one in four or five memory
/// operations survives UMI's filter, as in the paper's Table 3.
pub fn add_abi_noise(program: &mut Program, name: &str) {
    let mut rng = TableRng::from_name(name);
    let globals = program.reserve_static(64 * 8);
    let global_array = program.reserve_static((GLOBAL_SLOTS * 8) as usize);
    for block in &mut program.blocks {
        if !block.insns.iter().any(Insn::accesses_memory) {
            continue;
        }
        let mut decorated = Vec::with_capacity(block.insns.len() + 10);
        // Reload a "local" at block entry.
        let slot = 8 * (1 + rng.below(SPILL_SLOTS as u64) as i64);
        decorated.push(Insn::Load {
            dst: Reg::R13,
            mem: MemRef::base_disp(Reg::EBP, -slot),
            width: Width::W8,
        });
        // Every decorated block also touches the shared global array at a
        // pseudo-random slot (register-indexed: *kept* by the filter, like
        // any real global-array access) — the steady L1-miss/L2-hit
        // traffic that keeps hardware L2 ratios conditioned even for
        // otherwise cache-resident programs. R12 holds a pure LCG chain —
        // only these steps ever write it, so the index stream stays well
        // distributed; R13 is the disposable scratch.
        {
            decorated.push(Insn::Binary {
                op: umi_ir::BinOp::Mul,
                dst: Reg::R12,
                src: Operand::Imm(6_364_136_223_846_793_005),
            });
            decorated.push(Insn::Binary {
                op: umi_ir::BinOp::Add,
                dst: Reg::R12,
                src: Operand::Imm(1_442_695_040_888_963_407),
            });
            decorated.push(Insn::Mov {
                dst: Reg::R13,
                src: Operand::Reg(Reg::R12),
            });
            decorated.push(Insn::Binary {
                op: umi_ir::BinOp::Shr,
                dst: Reg::R13,
                src: Operand::Imm(21),
            });
            decorated.push(Insn::Binary {
                op: umi_ir::BinOp::And,
                dst: Reg::R13,
                src: Operand::Imm((GLOBAL_SLOTS - 1) as i64),
            });
            decorated.push(Insn::Load {
                dst: Reg::R13,
                mem: MemRef {
                    base: None,
                    index: Some((Reg::R13, 8)),
                    disp: global_array as i64,
                },
                width: Width::W8,
            });
        }
        for insn in block.insns.drain(..) {
            let was_mem = insn.accesses_memory();
            decorated.push(insn);
            if was_mem {
                // After each real reference: a spill, and sometimes a
                // static table touch.
                let slot = 8 * (1 + rng.below(SPILL_SLOTS as u64) as i64);
                decorated.push(Insn::Store {
                    mem: MemRef::base_disp(Reg::EBP, -slot),
                    src: Operand::Reg(Reg::R12),
                    width: Width::W8,
                });
                if rng.below(2) == 0 {
                    let off = 8 * rng.below(64);
                    decorated.push(Insn::Load {
                        dst: Reg::R13,
                        mem: MemRef::absolute(globals + off),
                        width: Width::W8,
                    });
                }
                if rng.below(2) == 0 {
                    let slot = 8 * (1 + rng.below(SPILL_SLOTS as u64) as i64);
                    decorated.push(Insn::Load {
                        dst: Reg::R13,
                        mem: MemRef::base_disp(Reg::EBP, -slot),
                        width: Width::W8,
                    });
                }
            }
        }
        block.insns = decorated;
    }
    program.relayout();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{stream, StreamParams};
    use umi_vm::{NullSink, Vm};

    fn plain() -> Program {
        stream(
            "noise-test",
            StreamParams {
                elems: 1024,
                passes: 2,
                stride: 1,
                stores: true,
                compute_nops: 0,
            },
        )
    }

    #[test]
    fn noise_adds_filtered_references_only() {
        let base = plain();
        let mut noisy = plain();
        add_abi_noise(&mut noisy, "noise-test");
        let filtered = |p: &Program| {
            p.blocks
                .iter()
                .flat_map(|b| &b.insns)
                .flat_map(Insn::mem_refs)
                .filter(|(m, _)| m.is_filtered())
                .count()
        };
        let unfiltered = |p: &Program| {
            p.blocks
                .iter()
                .flat_map(|b| &b.insns)
                .flat_map(Insn::mem_refs)
                .filter(|(m, _)| !m.is_filtered())
                .count()
        };
        // Kernel refs survive; the only unfiltered additions are the
        // register-indexed global-array touches (profiled, like real
        // global-array accesses).
        assert!(unfiltered(&noisy) >= unfiltered(&base), "kernel refs lost");
        assert!(
            unfiltered(&noisy) <= unfiltered(&base) + noisy.blocks.len(),
            "at most one global touch per block"
        );
        assert!(
            filtered(&noisy) > filtered(&base) + 2,
            "noise must be filtered class"
        );
        assert_eq!(noisy.validate(), Ok(()));
    }

    #[test]
    fn noise_preserves_architectural_results() {
        let base = plain();
        let mut noisy = plain();
        add_abi_noise(&mut noisy, "noise-test");
        let mut a = Vm::new(&base);
        let mut b = Vm::new(&noisy);
        a.run(&mut NullSink, u64::MAX);
        let rb = b.run(&mut NullSink, u64::MAX);
        assert!(rb.finished);
        assert_eq!(
            a.reg(Reg::EDX),
            b.reg(Reg::EDX),
            "kernel result must not change"
        );
        assert!(rb.stats.loads > a.stats().loads, "noise adds dynamic loads");
    }

    #[test]
    fn noise_is_deterministic() {
        let mut a = plain();
        let mut b = plain();
        add_abi_noise(&mut a, "x");
        add_abi_noise(&mut b, "x");
        assert_eq!(a.blocks, b.blocks);
    }
}
