//! Control-intensive state-machine kernel (`176.gcc`, `186.crafty`,
//! `458.sjeng`-class).

use umi_ir::{Program, ProgramBuilder, Reg, Width};

/// Parameters of the state-machine kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControlParams {
    /// Frequently dispatched states.
    pub hot_states: usize,
    /// Rarely dispatched states (each executes too seldom to be promoted
    /// into a trace — the `176.gcc` "cold code" effect).
    pub cold_states: usize,
    /// Of every 16 dispatches, how many go to cold states (0..=15).
    pub cold_per_16: usize,
    /// Dispatch steps to execute.
    pub steps: usize,
    /// Table slots per hot state (8 bytes each; power of two). Totals
    /// larger than L1 keep L2 demand traffic realistic.
    pub table_slots: usize,
    /// ALU/no-op work per step (dilutes the indirect-branch density).
    pub work_nops: usize,
}

/// Builds an indirect-dispatch interpreter: a central dispatcher picks the
/// next state pseudo-randomly through a jump table; hot states recur
/// constantly, cold states so rarely that the DBI never promotes them.
///
/// This is the CINT2000 character the paper highlights: low miss ratio
/// (tables are L2-resident), many indirect branches (DBI overhead), and —
/// with enough cold states — poor trace-cache residency ("176.gcc spends
/// less than 70% of its execution running from the trace cache").
pub fn control(name: &str, p: ControlParams) -> Program {
    assert!(p.hot_states >= 2, "need at least two hot states");
    assert!(p.cold_per_16 <= 15, "cold_per_16 out of range");
    assert!(
        p.cold_per_16 == 0 || p.cold_states > 0,
        "cold dispatch needs cold states"
    );
    assert!(
        p.table_slots.is_power_of_two(),
        "table slots must be a power of two"
    );
    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");
    let hot_table = pb.bss(p.hot_states * p.table_slots * 8);
    let cold_table = pb.bss(64 * 8);

    let dispatch = pb.new_block();
    let sel = pb.new_block();
    let done = pb.new_block();
    let hot: Vec<_> = (0..p.hot_states).map(|_| pb.new_block()).collect();
    let cold: Vec<_> = (0..p.cold_states).map(|_| pb.new_block()).collect();

    pb.block(f.entry())
        .movi(Reg::R9, 0xb792_1fa9_9c2f_1e4du64 as i64)
        .movi(Reg::ECX, p.steps as i64)
        .movi(Reg::ESI, hot_table as i64)
        .movi(Reg::R11, cold_table as i64)
        .jmp(dispatch);

    pb.block(dispatch)
        .addi(Reg::ECX, -1)
        .cmpi(Reg::ECX, 0)
        .br_le(done, sel);
    {
        // One shared jump table: slot i goes cold when (i % 16) is below
        // the cold share, hot otherwise. Round-robin assignment makes
        // every state reachable and the dispatch distribution uniform.
        let table_len = 16_384usize;
        let (mut h, mut c) = (0usize, 0usize);
        let table: Vec<_> = (0..table_len)
            .map(|i| {
                if i % 16 < p.cold_per_16 && !cold.is_empty() {
                    c += 1;
                    cold[(c - 1) % p.cold_states]
                } else {
                    h += 1;
                    hot[(h - 1) % p.hot_states]
                }
            })
            .collect();
        let bb = pb.block(sel);
        let bb = crate::kernels::lcg_step(bb, Reg::R9);
        let bb = bb.mov(Reg::EDI, Reg::R9).shr(Reg::EDI, 29);
        bb.jmp_ind(Reg::EDI, table);
    }

    for (s, &block) in hot.iter().enumerate() {
        let base = (s * p.table_slots * 8) as i64;
        pb.block(block)
            .addi(Reg::EDX, (s + 1) as i64)
            .xor(Reg::EDX, (s * 3) as i64)
            .nops(p.work_nops)
            .mov(Reg::EAX, Reg::R9)
            .shr(Reg::EAX, 17)
            .and(Reg::EAX, (p.table_slots - 1) as i64)
            .shl(Reg::EAX, 3)
            .addi(Reg::EAX, base)
            .add(Reg::EAX, Reg::ESI)
            .load(Reg::EBX, umi_ir::MemRef::base(Reg::EAX), Width::W8)
            .add(Reg::EDX, Reg::EBX)
            .jmp(dispatch);
    }
    for (s, &block) in cold.iter().enumerate() {
        pb.block(block)
            .addi(Reg::EDX, s as i64)
            .nops(4)
            .mov(Reg::EAX, Reg::R9)
            .shr(Reg::EAX, 11)
            .and(Reg::EAX, 63)
            .load(
                Reg::EBX,
                umi_ir::MemRef::base_index(Reg::R11, Reg::EAX, 8, 0),
                Width::W8,
            )
            .xor(Reg::EDX, (s * 7) as i64)
            .jmp(dispatch);
    }
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{p4_l2_miss_ratio, run_to_end};
    use umi_dbi::{CostModel, DbiRuntime};
    use umi_vm::NullSink;

    fn hot_only(states: usize, steps: usize) -> ControlParams {
        ControlParams {
            hot_states: states,
            cold_states: 0,
            cold_per_16: 0,
            steps,
            table_slots: 512,
            work_nops: 8,
        }
    }

    #[test]
    fn executes_requested_steps() {
        let p = control("c", hot_only(8, 10_000));
        let stats = run_to_end(&p);
        assert_eq!(stats.loads, 10_000 - 1, "one table load per completed step");
    }

    #[test]
    fn miss_ratio_is_low_with_l2_resident_tables() {
        // 16 states x 512 slots x 8 B = 64 KB: misses L1, hits L2.
        let p = control("eon-like", hot_only(16, 150_000));
        let r = p4_l2_miss_ratio(&p);
        assert!(r < 0.05, "state machine data is L2-resident: {r}");
    }

    #[test]
    fn indirect_branches_dominate_dispatch() {
        let p = control("sj", hot_only(16, 50_000));
        let mut rt = DbiRuntime::new(&p, CostModel::default());
        rt.run(&mut NullSink, u64::MAX);
        assert!(rt.stats().indirect_branches >= 49_000);
    }

    #[test]
    fn cold_states_depress_trace_residency() {
        let cold = control(
            "gcc-like",
            ControlParams {
                hot_states: 16,
                cold_states: 8192,
                cold_per_16: 12,
                steps: 200_000,
                table_slots: 512,
                work_nops: 8,
            },
        );
        let hot = control("hot-only", hot_only(16, 200_000));
        let res = |p: &Program| {
            let mut rt = DbiRuntime::new(p, CostModel::default());
            rt.run(&mut NullSink, u64::MAX);
            rt.stats().trace_cache_residency()
        };
        let rc = res(&cold);
        let rh = res(&hot);
        assert!(rc < 0.85, "cold-code dispatch must depress residency: {rc}");
        assert!(rh > rc + 0.1, "hot-only {rh} vs cold {rc}");
    }

    #[test]
    #[should_panic(expected = "cold dispatch needs cold states")]
    fn rejects_cold_share_without_cold_states() {
        let _ = control(
            "bad",
            ControlParams {
                hot_states: 4,
                cold_states: 0,
                cold_per_16: 4,
                steps: 10,
                table_slots: 64,
                work_nops: 0,
            },
        );
    }
}
