//! Sparse matrix–vector kernel (`183.equake`, `450.soplex`-class).

use crate::rng::TableRng;
use umi_ir::{Program, ProgramBuilder, Reg, Width};

/// Parameters of the sparse mat-vec kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpmvParams {
    /// Matrix rows.
    pub rows: usize,
    /// Non-zeros per row.
    pub nnz: usize,
    /// Elements of the dense vector `x` (8 bytes each).
    pub x_elems: usize,
    /// Multiplication passes.
    pub passes: usize,
}

/// Builds `y = A·x` with CSR-style indirection: the column-index array
/// streams densely while the gathers into `x` scatter — the mixed
/// regular/irregular pattern of FEM codes like `183.equake`.
pub fn spmv(name: &str, p: SpmvParams) -> Program {
    assert!(p.rows > 0 && p.nnz > 0 && p.passes > 0, "degenerate spmv");
    assert!(
        p.x_elems.is_power_of_two(),
        "x_elems must be a power of two"
    );
    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");

    let mut rng = TableRng::from_name(name);
    let colidx = rng.indices(p.rows * p.nnz, p.x_elems as u64);
    let colidx_seg = pb.data_words(&colidx);
    let x = pb.bss(p.x_elems * 8);
    let y = pb.bss(p.rows * 8);

    let pass = pb.new_block();
    let row = pb.new_block();
    let nz = pb.new_block();
    let row_end = pb.new_block();
    let pass_end = pb.new_block();
    let done = pb.new_block();

    // R8 = pass, R9 = row, ECX = nz counter, R10 = flat colidx cursor.
    pb.block(f.entry()).movi(Reg::R8, 0).jmp(pass);
    pb.block(pass).movi(Reg::R9, 0).movi(Reg::R10, 0).jmp(row);
    pb.block(row).movi(Reg::ECX, 0).movi(Reg::EDX, 0).jmp(nz);
    pb.block(nz)
        .movi(Reg::ESI, colidx_seg as i64)
        .load(Reg::EAX, Reg::ESI + (Reg::R10, 8), Width::W8) // column index
        .movi(Reg::EDI, x as i64)
        .load(Reg::EBX, Reg::EDI + (Reg::EAX, 8), Width::W8) // gather x[col]
        .add(Reg::EDX, Reg::EBX)
        .addi(Reg::R10, 1)
        .addi(Reg::ECX, 1)
        .cmpi(Reg::ECX, p.nnz as i64)
        .br_lt(nz, row_end);
    pb.block(row_end)
        .movi(Reg::EDI, y as i64)
        .store(Reg::EDI + (Reg::R9, 8), Reg::EDX, Width::W8)
        .addi(Reg::R9, 1)
        .cmpi(Reg::R9, p.rows as i64)
        .br_lt(row, pass_end);
    pb.block(pass_end)
        .addi(Reg::R8, 1)
        .cmpi(Reg::R8, p.passes as i64)
        .br_lt(pass, done);
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{p4_l2_miss_ratio, run_to_end};

    #[test]
    fn reference_counts() {
        let p = spmv(
            "s",
            SpmvParams {
                rows: 32,
                nnz: 4,
                x_elems: 256,
                passes: 2,
            },
        );
        let stats = run_to_end(&p);
        assert_eq!(stats.loads, 2 * 32 * 4 * 2, "colidx + gather per nz");
        assert_eq!(stats.stores, 2 * 32);
    }

    #[test]
    fn large_vector_gathers_miss() {
        let p = spmv(
            "equake-like",
            SpmvParams {
                rows: 4096,
                nnz: 8,
                x_elems: 1 << 18, // 2 MB x
                passes: 2,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(r > 0.05, "scattered gathers should miss: {r}");
    }

    #[test]
    fn small_vector_is_resident() {
        let p = spmv(
            "small",
            SpmvParams {
                rows: 4096,
                nnz: 8,
                x_elems: 1 << 11,
                passes: 8,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(r < 0.1, "small x fits: {r}");
    }
}
