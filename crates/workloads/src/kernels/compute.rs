//! Compute-bound kernel (`177.mesa`, `200.sixtrack`, `252.eon`-class).

use umi_ir::{Program, ProgramBuilder, Reg, Width};

/// Parameters of the compute kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComputeParams {
    /// Loop iterations.
    pub iters: usize,
    /// ALU/no-op work per iteration.
    pub nops: usize,
    /// Working-set slots (8 bytes each; power of two, small = resident).
    pub slots: usize,
}

/// Builds a compute-dominated loop with a tiny, cache-resident working
/// set: the "computationally intensive [...] very good reference locality"
/// profile of `252.eon` (0.00% L2 miss ratio in Table 6).
pub fn compute(name: &str, p: ComputeParams) -> Program {
    assert!(p.slots.is_power_of_two(), "slots must be a power of two");
    assert!(p.iters > 0, "no iterations");
    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");
    let data = pb.bss(p.slots * 8);

    let body = pb.new_block();
    let done = pb.new_block();

    pb.block(f.entry())
        .movi(Reg::ECX, 0)
        .movi(Reg::ESI, data as i64)
        .jmp(body);
    pb.block(body)
        .mov(Reg::EAX, Reg::ECX)
        .and(Reg::EAX, (p.slots - 1) as i64)
        .load(Reg::EBX, Reg::ESI + (Reg::EAX, 8), Width::W8)
        .add(Reg::EBX, Reg::ECX)
        .mul(Reg::EBX, 3)
        .xor(Reg::EBX, 0x5a5a)
        .store(Reg::ESI + (Reg::EAX, 8), Reg::EBX, Width::W8)
        .nops(p.nops)
        .addi(Reg::ECX, 1)
        .cmpi(Reg::ECX, p.iters as i64)
        .br_lt(body, done);
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{p4_l2_miss_ratio, run_to_end};

    #[test]
    fn instruction_mix_is_compute_heavy() {
        let p = compute(
            "c",
            ComputeParams {
                iters: 1000,
                nops: 20,
                slots: 64,
            },
        );
        let stats = run_to_end(&p);
        assert!(stats.insns as f64 / stats.mem_refs() as f64 > 10.0);
    }

    #[test]
    fn miss_ratio_is_essentially_zero() {
        let p = compute(
            "eon-like",
            ComputeParams {
                iters: 100_000,
                nops: 10,
                slots: 4096,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(r < 0.05, "L2-resident compute loop: {r}");
    }
}
