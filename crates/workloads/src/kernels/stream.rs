//! Array-streaming kernel (`179.art`, `171.swim`-class behaviour).

use umi_ir::{Program, ProgramBuilder, Reg, Width};

/// Parameters of the streaming kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamParams {
    /// Elements (8 bytes each) per array.
    pub elems: usize,
    /// Full passes over the arrays.
    pub passes: usize,
    /// Stride between touched elements, in elements (1 = dense).
    pub stride: usize,
    /// Whether each iteration also writes a second array.
    pub stores: bool,
    /// No-ops per iteration (compute density).
    pub compute_nops: usize,
}

/// Builds a program that streams over one (optionally two) arrays for
/// `passes` passes. With a footprint beyond L2, every line touch misses —
/// the canonical high-miss, perfectly-strided delinquent load.
pub fn stream(name: &str, p: StreamParams) -> Program {
    assert!(
        p.elems > 0 && p.passes > 0 && p.stride > 0,
        "degenerate stream"
    );
    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");
    let a = pb.bss(p.elems * 8);
    let b = if p.stores { pb.bss(p.elems * 8) } else { 0 };

    let outer = pb.new_block();
    let inner = pb.new_block();
    let next_pass = pb.new_block();
    let done = pb.new_block();

    // R8 = pass counter.
    pb.block(f.entry()).movi(Reg::R8, 0).jmp(outer);
    pb.block(outer)
        .movi(Reg::ECX, 0)
        .movi(Reg::ESI, a as i64)
        .movi(Reg::EDI, b as i64)
        .jmp(inner);
    {
        let iters = (p.elems / p.stride) as i64;
        let mut bb = pb
            .block(inner)
            .load(Reg::EAX, Reg::ESI + (Reg::ECX, 8), Width::W8)
            .add(Reg::EDX, Reg::EAX);
        if p.stores {
            bb = bb.store(Reg::EDI + (Reg::ECX, 8), Reg::EDX, Width::W8);
        }
        bb = bb
            .nops(p.compute_nops)
            .addi(Reg::ECX, p.stride as i64)
            .cmpi(Reg::ECX, iters * p.stride as i64);
        bb.br_lt(inner, next_pass);
    }
    pb.block(next_pass)
        .addi(Reg::R8, 1)
        .cmpi(Reg::R8, p.passes as i64)
        .br_lt(outer, done);
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{p4_l2_miss_ratio, run_to_end};

    #[test]
    fn terminates_and_counts() {
        let p = stream(
            "s",
            StreamParams {
                elems: 1024,
                passes: 3,
                stride: 1,
                stores: true,
                compute_nops: 0,
            },
        );
        let stats = run_to_end(&p);
        assert_eq!(stats.loads, 3 * 1024);
        assert_eq!(stats.stores, 3 * 1024);
    }

    #[test]
    fn large_footprint_misses_hard() {
        // 4 MB >> 512 KB L2: every line miss, dense 8B stride → 1/8 ratio.
        let p = stream(
            "art-like",
            StreamParams {
                elems: 512 * 1024,
                passes: 2,
                stride: 1,
                stores: false,
                compute_nops: 0,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(r > 0.10, "expected heavy misses, got {r}");
    }

    #[test]
    fn small_footprint_hits() {
        // 64 KB fits L2 comfortably after the first pass; with enough
        // passes the compulsory misses wash out.
        let p = stream(
            "resident",
            StreamParams {
                elems: 8 * 1024,
                passes: 64,
                stride: 1,
                stores: false,
                compute_nops: 0,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(r < 0.05, "resident stream should hit, got {r}");
    }

    #[test]
    fn wide_stride_misses_every_access() {
        // 64-byte stride touches a new line every access (ft-like).
        let p = stream(
            "ft-like",
            StreamParams {
                elems: 512 * 1024,
                passes: 1,
                stride: 8,
                stores: false,
                compute_nops: 0,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(r > 0.5, "wide stride must miss nearly always, got {r}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_elems() {
        let _ = stream(
            "bad",
            StreamParams {
                elems: 0,
                passes: 1,
                stride: 1,
                stores: false,
                compute_nops: 0,
            },
        );
    }
}
