//! Five-point stencil kernel (`171.swim`, `172.mgrid`, `301.apsi`-class).

use umi_ir::{Program, ProgramBuilder, Reg, Width};

/// Parameters of the stencil kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StencilParams {
    /// Grid width in 8-byte elements.
    pub width: usize,
    /// Grid height in rows.
    pub height: usize,
    /// Relaxation sweeps over the grid.
    pub sweeps: usize,
}

/// Builds a Jacobi-style 5-point stencil: each interior point reads its
/// four neighbours and writes itself. Rows stream with unit stride; the
/// vertical neighbours give a second reference stream one row apart, so a
/// grid larger than L2 exhibits the classic capacity-miss pattern of the
/// SPEC CFP codes.
pub fn stencil(name: &str, p: StencilParams) -> Program {
    assert!(
        p.width >= 4 && p.height >= 4 && p.sweeps > 0,
        "grid too small"
    );
    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");
    let grid = pb.bss(p.width * p.height * 8);
    let row_bytes = (p.width * 8) as i64;

    let sweep = pb.new_block();
    let row = pb.new_block();
    let col = pb.new_block();
    let row_end = pb.new_block();
    let sweep_end = pb.new_block();
    let done = pb.new_block();

    // R8 = sweep, R9 = row index, ESI = &grid[y][1], ECX = column counter.
    pb.block(f.entry()).movi(Reg::R8, 0).jmp(sweep);
    pb.block(sweep).movi(Reg::R9, 1).jmp(row);
    pb.block(row)
        .movi(Reg::ESI, grid as i64 + 8)
        .mov(Reg::EAX, Reg::R9)
        .mul(Reg::EAX, row_bytes)
        .add(Reg::ESI, Reg::EAX)
        .movi(Reg::ECX, 1)
        .jmp(col);
    pb.block(col)
        .load(Reg::EAX, Reg::ESI + -8, Width::W8) // west
        .load(Reg::EBX, Reg::ESI + 8, Width::W8) // east
        .load(Reg::EDX, Reg::ESI + -row_bytes, Width::W8) // north
        .load(Reg::EDI, Reg::ESI + row_bytes, Width::W8) // south
        .add(Reg::EAX, Reg::EBX)
        .add(Reg::EAX, Reg::EDX)
        .add(Reg::EAX, Reg::EDI)
        .shr(Reg::EAX, 2)
        .store(Reg::ESI + 0, Reg::EAX, Width::W8)
        .addi(Reg::ESI, 8)
        .addi(Reg::ECX, 1)
        .cmpi(Reg::ECX, (p.width - 1) as i64)
        .br_lt(col, row_end);
    pb.block(row_end)
        .addi(Reg::R9, 1)
        .cmpi(Reg::R9, (p.height - 1) as i64)
        .br_lt(row, sweep_end);
    pb.block(sweep_end)
        .addi(Reg::R8, 1)
        .cmpi(Reg::R8, p.sweeps as i64)
        .br_lt(sweep, done);
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{p4_l2_miss_ratio, run_to_end};

    #[test]
    fn reference_counts_match_geometry() {
        let (w, h, s) = (16, 8, 2);
        let p = stencil(
            "st",
            StencilParams {
                width: w,
                height: h,
                sweeps: s,
            },
        );
        let stats = run_to_end(&p);
        let interior = ((w - 2) * (h - 2) * s) as u64;
        assert_eq!(stats.loads, 4 * interior);
        assert_eq!(stats.stores, interior);
    }

    #[test]
    fn large_grid_misses_moderately() {
        // ~2 MB grid: streams miss on each new line; 5 refs per element.
        let p = stencil(
            "swim-like",
            StencilParams {
                width: 512,
                height: 512,
                sweeps: 1,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(r > 0.01 && r < 0.6, "stencil miss ratio out of band: {r}");
    }

    #[test]
    fn small_grid_is_resident() {
        // 128 KB grid: beyond L1 (constant L2 traffic) but within L2.
        let p = stencil(
            "small",
            StencilParams {
                width: 128,
                height: 128,
                sweeps: 40,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(r < 0.05, "L2-resident stencil should hit: {r}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_grid() {
        let _ = stencil(
            "bad",
            StencilParams {
                width: 2,
                height: 2,
                sweeps: 1,
            },
        );
    }
}
