//! Tree-walking kernel (Olden `treeadd`/`tsp`, `175.vpr`-class).

use umi_ir::{MemRef, Program, ProgramBuilder, Reg, Width};

/// Parameters of the tree kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeParams {
    /// Nodes in the implicit binary tree (array heap layout, 16 B/node).
    pub nodes: usize,
    /// Random root-to-leaf descents.
    pub descents: usize,
    /// Sequential whole-tree sum passes (treeadd style).
    pub sum_passes: usize,
}

/// Builds an implicit binary tree (children of `i` at `2i`/`2i+1`) and
/// walks it: random descents driven by an in-ISA LCG (upper levels cache
/// well, leaves miss — moderate miss ratio), plus sequential sum passes
/// (dense and prefetchable, like `treeadd`'s post-order accumulation).
pub fn tree(name: &str, p: TreeParams) -> Program {
    assert!(p.nodes >= 8, "tree too small");
    assert!(p.descents > 0 || p.sum_passes > 0, "nothing to do");
    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");
    let arena = pb.bss(p.nodes * 16);

    let d_outer = pb.new_block();
    let d_step = pb.new_block();
    let d_end = pb.new_block();
    let s_init = pb.new_block();
    let s_outer = pb.new_block();
    let s_inner = pb.new_block();
    let s_end = pb.new_block();
    let done = pb.new_block();

    // ECX = descent counter, EBX = node index, R9 = LCG state, R8 = pass.
    pb.block(f.entry())
        .movi(Reg::ECX, 0)
        .movi(Reg::R9, 0x1234_5678_9abc_def1u64 as i64)
        .movi(Reg::ESI, arena as i64)
        .jmp(if p.descents > 0 { d_outer } else { s_init });

    pb.block(d_outer).movi(Reg::EBX, 1).jmp(d_step);
    {
        let bb = pb.block(d_step);
        let bb = crate::kernels::lcg_step(bb, Reg::R9);
        bb.mov(Reg::EAX, Reg::EBX)
            .shl(Reg::EAX, 4) // node index -> byte offset (16 B nodes)
            .add(Reg::EAX, Reg::ESI)
            .load(Reg::EDX, MemRef::base(Reg::EAX), Width::W8)
            // child = 2*i + ((lcg >> 33) & 1)
            .mov(Reg::EDI, Reg::R9)
            .shr(Reg::EDI, 33)
            .and(Reg::EDI, 1)
            .shl(Reg::EBX, 1)
            .add(Reg::EBX, Reg::EDI)
            .cmpi(Reg::EBX, p.nodes as i64)
            .br_lt(d_step, d_end);
    }
    pb.block(d_end)
        .addi(Reg::ECX, 1)
        .cmpi(Reg::ECX, p.descents as i64)
        .br_lt(d_outer, s_init);

    // Sum passes (skipped entirely when none are requested).
    if p.sum_passes == 0 {
        pb.block(s_init).jmp(done);
        // Keep the structural blocks terminated (never executed).
        pb.block(s_outer).jmp(done);
        pb.block(s_inner).jmp(done);
        pb.block(s_end).jmp(done);
    } else {
        pb.block(s_init).movi(Reg::R8, 0).jmp(s_outer);
        pb.block(s_outer).movi(Reg::EBX, 0).jmp(s_inner);
        pb.block(s_inner)
            .load(Reg::EAX, Reg::ESI + (Reg::EBX, 8), Width::W8)
            .add(Reg::EDX, Reg::EAX)
            .addi(Reg::EBX, 2) // 16-byte nodes = every other word
            .cmpi(Reg::EBX, (p.nodes * 2) as i64)
            .br_lt(s_inner, s_end);
        pb.block(s_end)
            .addi(Reg::R8, 1)
            .cmpi(Reg::R8, p.sum_passes as i64)
            .br_lt(s_outer, done);
    }
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{p4_l2_miss_ratio, run_to_end};

    #[test]
    fn sum_only_counts_every_node_once_per_pass() {
        let p = tree(
            "t",
            TreeParams {
                nodes: 64,
                descents: 0,
                sum_passes: 3,
            },
        );
        let stats = run_to_end(&p);
        assert_eq!(stats.loads, 3 * 64);
    }

    #[test]
    fn descents_terminate_at_leaves() {
        let p = tree(
            "d",
            TreeParams {
                nodes: 1024,
                descents: 50,
                sum_passes: 0,
            },
        );
        let stats = run_to_end(&p);
        // Each descent visits ~log2(1024) = 10 nodes.
        assert!(
            stats.loads >= 50 * 9 && stats.loads <= 50 * 11,
            "loads {}",
            stats.loads
        );
    }

    #[test]
    fn large_tree_descents_miss_at_the_bottom() {
        // 4 MB tree: upper levels resident, leaves not.
        let p = tree(
            "big",
            TreeParams {
                nodes: 1 << 18,
                descents: 20_000,
                sum_passes: 0,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(
            r > 0.05 && r < 0.6,
            "tree descent miss ratio out of band: {r}"
        );
    }

    #[test]
    fn small_tree_is_resident() {
        let p = tree(
            "small",
            TreeParams {
                nodes: 1 << 10,
                descents: 20_000,
                sum_passes: 2,
            },
        );
        let r = p4_l2_miss_ratio(&p);
        assert!(r < 0.01, "16 KB tree must be resident: {r}");
    }

    #[test]
    #[should_panic(expected = "nothing to do")]
    fn rejects_empty_work() {
        let _ = tree(
            "bad",
            TreeParams {
                nodes: 64,
                descents: 0,
                sum_passes: 0,
            },
        );
    }
}
