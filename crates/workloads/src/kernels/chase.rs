//! Pointer-chasing kernel (`181.mcf`, Olden `em3d`/`health`-class).

use crate::rng::TableRng;
use umi_ir::{Program, ProgramBuilder, Reg, Width, STATIC_BASE};

/// Parameters of the pointer-chase kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaseParams {
    /// Number of list nodes.
    pub nodes: usize,
    /// Bytes per node (≥ 16; first word is the next pointer).
    pub node_bytes: usize,
    /// Total pointer dereferences to perform.
    pub steps: usize,
    /// Whether the list order is a random permutation (true) or sequential
    /// (false — prefetch-friendly).
    pub shuffled: bool,
    /// Extra payload words loaded from each visited node (0..=2).
    pub payload_loads: usize,
}

/// Builds a linked-list traversal. Node images (with embedded absolute
/// `next` pointers) are laid out in a static segment; traversal uses
/// register-indirect loads, so the chase load is profiled by UMI. With a
/// shuffled list larger than L2, nearly every dereference misses and *no
/// stride exists* — the delinquent-but-unprefetchable case.
pub fn chase(name: &str, p: ChaseParams) -> Program {
    assert!(p.nodes >= 2, "need at least two nodes");
    assert!(
        p.node_bytes >= 16 && p.node_bytes.is_multiple_of(8),
        "node too small"
    );
    assert!(p.payload_loads <= 2, "at most two payload loads");

    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");

    // Build the node arena. The arena base is the *next* 64-aligned
    // address in the static region; `ProgramBuilder::data` guarantees it.
    let mut rng = TableRng::from_name(name);
    let order = if p.shuffled {
        rng.permutation(p.nodes)
    } else {
        (0..p.nodes as u64).collect()
    };
    let arena_len = p.nodes * p.node_bytes;
    let mut arena = vec![0u8; arena_len];
    // Predict the base address: segments are 64-aligned, and this is the
    // first segment, so it lands at STATIC_BASE.
    let base = STATIC_BASE;
    for k in 0..p.nodes {
        let this = order[k] as usize;
        let next = order[(k + 1) % p.nodes] as usize;
        let next_addr = base + (next * p.node_bytes) as u64;
        let off = this * p.node_bytes;
        arena[off..off + 8].copy_from_slice(&next_addr.to_le_bytes());
        // Payload words carry the node id.
        for w in 1..(p.node_bytes / 8).min(3) {
            arena[off + w * 8..off + w * 8 + 8].copy_from_slice(&(this as u64).to_le_bytes());
        }
    }
    let actual = pb.data(arena);
    assert_eq!(actual, base, "arena must be the first static segment");

    let head = base + (order[0] as usize * p.node_bytes) as u64;
    let walk = pb.new_block();
    let done = pb.new_block();

    pb.block(f.entry())
        .movi(Reg::ESI, head as i64)
        .movi(Reg::ECX, 0)
        .movi(Reg::EDX, 0)
        .jmp(walk);
    {
        let mut bb = pb.block(walk);
        for w in 0..p.payload_loads {
            bb = bb
                .load(Reg::EAX, Reg::ESI + (8 + 8 * w as i64), Width::W8)
                .add(Reg::EDX, Reg::EAX);
        }
        bb.load(Reg::ESI, Reg::ESI + 0, Width::W8) // the chase
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, p.steps as i64)
            .br_lt(walk, done);
    }
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{p4_l2_miss_ratio, run_to_end};
    use umi_vm::{NullSink, Vm};

    fn params(nodes: usize, steps: usize, shuffled: bool) -> ChaseParams {
        ChaseParams {
            nodes,
            node_bytes: 64,
            steps,
            shuffled,
            payload_loads: 1,
        }
    }

    #[test]
    fn list_is_a_cycle_over_all_nodes() {
        // After exactly `nodes` steps the walker is back at the head.
        let n = 257;
        let p = chase("cycle", params(n, n, true));
        let mut vm = Vm::new(&p);
        vm.run(&mut NullSink, u64::MAX);
        let esi = vm.reg(Reg::ESI) as u64;
        // Recompute the head.
        let mut rng = TableRng::from_name("cycle");
        let order = rng.permutation(n);
        let head = STATIC_BASE + order[0] * 64;
        assert_eq!(esi, head, "walker did not complete the cycle");
    }

    #[test]
    fn counts_match() {
        let p = chase("c", params(64, 1000, true));
        let stats = run_to_end(&p);
        assert_eq!(stats.loads, 2 * 1000, "chase + one payload per step");
    }

    #[test]
    fn shuffled_large_list_misses() {
        // 64K nodes * 64 B = 4 MB >> L2, random order.
        let p = chase("mcf-like", params(65_536, 200_000, true));
        let r = p4_l2_miss_ratio(&p);
        assert!(r > 0.15, "random chase should miss hard, got {r}");
    }

    #[test]
    fn sequential_list_is_prefetchable_shuffled_is_not() {
        // Both layouts miss a cold cache equally; the difference is that a
        // hardware stride prefetcher rescues only the sequential one.
        use umi_hw::{Machine, Platform, PrefetchSetting};
        let run = |shuffled: bool| {
            let p = chase("s1", params(65_536, 200_000, shuffled));
            let mut m = Machine::new(Platform::pentium4(), PrefetchSetting::Full);
            umi_vm::Vm::new(&p).run(&mut m, u64::MAX);
            m.counters().l2_misses
        };
        let seq = run(false);
        let shuf = run(true);
        assert!(
            seq * 2 < shuf,
            "prefetcher should rescue sequential: {seq} vs {shuf}"
        );
    }

    #[test]
    fn small_list_is_resident() {
        let p = chase("small", params(256, 100_000, true));
        let r = p4_l2_miss_ratio(&p);
        assert!(r < 0.01, "16 KB list must be L2-resident, got {r}");
    }
}
