//! Parameterized workload kernels.
//!
//! Each kernel builds a [`Program`](umi_ir::Program) with a distinct,
//! well-understood memory character; the named suites in
//! the crate's `suite` module are instantiations of these kernels.

pub mod chase;
pub mod compute;
pub mod control;
pub mod copy;
pub mod hash;
pub mod phases;
pub mod spmv;
pub mod stencil;
pub mod stream;
pub mod tree;

pub use chase::{chase, ChaseParams};
pub use compute::{compute, ComputeParams};
pub use control::{control, ControlParams};
pub use copy::{copy, CopyParams};
pub use hash::{hash, HashParams};
pub use phases::{phases, PhasesParams};
pub use spmv::{spmv, SpmvParams};
pub use stencil::{stencil, StencilParams};
pub use stream::{stream, StreamParams};
pub use tree::{tree, TreeParams};

use umi_ir::{BlockBuilder, Reg};

/// Appends a 64-bit LCG step (`reg <- reg * A + C`) used by kernels that
/// need in-ISA pseudo-randomness. Constants are from Knuth's MMIX.
pub(crate) fn lcg_step(b: BlockBuilder<'_>, reg: Reg) -> BlockBuilder<'_> {
    b.mul(reg, 6_364_136_223_846_793_005i64)
        .add(reg, 1_442_695_040_888_963_407i64)
}

#[cfg(test)]
pub(crate) mod testutil {
    use umi_ir::Program;
    use umi_vm::{NullSink, Vm, VmStats};

    /// Runs a program to completion and returns its stats; asserts it
    /// terminates within the fuel budget.
    pub fn run_to_end(program: &Program) -> VmStats {
        let mut vm = Vm::new(program);
        let r = vm.run(&mut NullSink, 200_000_000);
        assert!(r.finished, "workload {} did not terminate", program.name);
        r.stats
    }

    /// L2 miss ratio of a full Pentium 4 simulation of the program.
    pub fn p4_l2_miss_ratio(program: &Program) -> f64 {
        let mut sim = umi_cache::FullSimulator::pentium4();
        let mut vm = Vm::new(program);
        let r = vm.run(&mut sim, 200_000_000);
        assert!(r.finished);
        sim.l2_miss_ratio()
    }
}
