//! Scattered hash-table kernel (`254.gap`, `255.vortex`, Olden `mst`-class).

use umi_ir::{Program, ProgramBuilder, Reg, Width};

/// Parameters of the hash kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HashParams {
    /// Table slots (8 bytes each); must be a power of two.
    pub slots: usize,
    /// Probe operations to perform.
    pub ops: usize,
    /// Whether every probe also writes the slot.
    pub stores: bool,
    /// No-ops per probe (compute density).
    pub compute_nops: usize,
}

/// Builds a uniformly scattered probe loop over a hash table, the classic
/// irregular-but-not-pointer-chased pattern: no stride exists, and the
/// miss ratio tracks the table-size-to-L2 ratio.
pub fn hash(name: &str, p: HashParams) -> Program {
    assert!(p.slots.is_power_of_two(), "slots must be a power of two");
    assert!(p.ops > 0, "no operations");
    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");
    let table = pb.bss(p.slots * 8);

    let probe = pb.new_block();
    let done = pb.new_block();

    // R9 = LCG state, ECX = op counter.
    pb.block(f.entry())
        .movi(Reg::R9, 0x243f_6a88_85a3_08d3u64 as i64)
        .movi(Reg::ECX, 0)
        .movi(Reg::ESI, table as i64)
        .jmp(probe);
    {
        let bb = pb.block(probe);
        let bb = crate::kernels::lcg_step(bb, Reg::R9);
        let mut bb = bb
            .mov(Reg::EAX, Reg::R9)
            .shr(Reg::EAX, 24)
            .and(Reg::EAX, (p.slots - 1) as i64)
            .load(Reg::EDX, Reg::ESI + (Reg::EAX, 8), Width::W8)
            .addi(Reg::EDX, 1);
        if p.stores {
            bb = bb.store(Reg::ESI + (Reg::EAX, 8), Reg::EDX, Width::W8);
        }
        bb.nops(p.compute_nops)
            .addi(Reg::ECX, 1)
            .cmpi(Reg::ECX, p.ops as i64)
            .br_lt(probe, done);
    }
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{p4_l2_miss_ratio, run_to_end};

    #[test]
    fn op_counts() {
        let p = hash(
            "h",
            HashParams {
                slots: 256,
                ops: 5000,
                stores: true,
                compute_nops: 0,
            },
        );
        let stats = run_to_end(&p);
        assert_eq!(stats.loads, 5000);
        assert_eq!(stats.stores, 5000);
    }

    #[test]
    fn big_table_misses_small_table_hits() {
        let big = hash(
            "b",
            HashParams {
                slots: 1 << 19, // 4 MB
                ops: 100_000,
                stores: false,
                compute_nops: 0,
            },
        );
        let small = hash(
            "s",
            HashParams {
                slots: 1 << 12, // 32 KB
                ops: 100_000,
                stores: false,
                compute_nops: 0,
            },
        );
        let rb = p4_l2_miss_ratio(&big);
        let rs = p4_l2_miss_ratio(&small);
        assert!(rb > 0.3, "4 MB table should mostly miss: {rb}");
        assert!(rs < 0.01, "32 KB table should hit: {rs}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_table() {
        let _ = hash(
            "bad",
            HashParams {
                slots: 300,
                ops: 1,
                stores: false,
                compute_nops: 0,
            },
        );
    }
}
