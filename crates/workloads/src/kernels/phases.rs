//! Dynamic multi-phase kernel (`197.parser`, `300.twolf`-class).

use crate::rng::TableRng;
use umi_ir::{Program, ProgramBuilder, Reg, Width};

/// Parameters of the multi-phase kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhasesParams {
    /// Outer "sentences" to process.
    pub sentences: usize,
    /// Phase-loop variants (distinct short loops; ≥ 1). More variants
    /// spread the heat thinner, the `197.parser` effect.
    pub variants: usize,
    /// Per-variant working-set slots (8 bytes; power of two).
    pub slots: usize,
    /// Maximum inner-loop trip count (actual trips are data-driven in
    /// `1..=max_trip`).
    pub max_trip: usize,
}

/// Builds a `197.parser`-like program: an outer loop reads a control word
/// from a table and indirect-jumps to one of many short phase loops; each
/// runs only a *data-dependent handful of iterations* over its own small
/// array. "Many loops run for only a few iterations" — plenty of trace
/// heads, each individually lukewarm, which is why parser's recall is so
/// sensitive to the frequency threshold (§7.2).
pub fn phases(name: &str, p: PhasesParams) -> Program {
    assert!(p.slots.is_power_of_two(), "slots must be a power of two");
    assert!(
        p.sentences > 0 && p.max_trip > 0 && p.variants > 0,
        "degenerate phases"
    );
    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");

    let mut rng = TableRng::from_name(name);
    let control: Vec<u64> = rng.indices(p.sentences, u64::MAX);
    let control_seg = pb.data_words(&control);
    let arenas: Vec<u64> = (0..p.variants).map(|_| pb.bss(p.slots * 8)).collect();

    let outer = pb.new_block();
    let select = pb.new_block();
    let next = pb.new_block();
    let done = pb.new_block();
    let phase: Vec<_> = (0..p.variants).map(|_| pb.new_block()).collect();

    // R8 = sentence index, EDX = control word, ECX = trip counter.
    pb.block(f.entry()).movi(Reg::R8, 0).jmp(outer);
    pb.block(outer)
        .movi(Reg::ESI, control_seg as i64)
        .load(Reg::EDX, Reg::ESI + (Reg::R8, 8), Width::W8)
        // trip = (control >> 8) % max_trip + 1
        .mov(Reg::ECX, Reg::EDX)
        .shr(Reg::ECX, 8)
        .rem(Reg::ECX, p.max_trip as i64)
        .addi(Reg::ECX, 1)
        .jmp(select);
    pb.block(select)
        .mov(Reg::EDI, Reg::EDX)
        .jmp_ind(Reg::EDI, phase.clone());

    for (v, &block) in phase.iter().enumerate() {
        let stores = v % 2 == 1;
        let mut bb = pb
            .block(block)
            .movi(Reg::ESI, arenas[v] as i64)
            .mov(Reg::EAX, Reg::EDX)
            .shr(Reg::EAX, 7)
            .and(Reg::EAX, (p.slots - 1) as i64)
            .load(Reg::EBX, Reg::ESI + (Reg::EAX, 8), Width::W8)
            .add(Reg::EBX, Reg::ECX);
        if stores {
            bb = bb.store(Reg::ESI + (Reg::EAX, 8), Reg::EBX, Width::W8);
        }
        bb.addi(Reg::EDX, 0x9e37 + v as i64)
            .addi(Reg::ECX, -1)
            .cmpi(Reg::ECX, 0)
            .br_gt(block, next);
    }

    pb.block(next)
        .addi(Reg::R8, 1)
        .cmpi(Reg::R8, p.sentences as i64)
        .br_lt(outer, done);
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{p4_l2_miss_ratio, run_to_end};
    use umi_dbi::{CostModel, DbiRuntime};
    use umi_vm::NullSink;

    fn params(sentences: usize) -> PhasesParams {
        PhasesParams {
            sentences,
            variants: 12,
            slots: 1024,
            max_trip: 5,
        }
    }

    #[test]
    fn terminates_with_bounded_work() {
        let p = phases("ph", params(1000));
        let stats = run_to_end(&p);
        // Each sentence: 1 control load + trips in [1, 5] phase loads.
        assert!(stats.loads >= 2 * 1000);
        assert!(stats.loads <= 1000 + 6 * 1000, "loads {}", stats.loads);
    }

    #[test]
    fn heat_is_spread_over_many_short_traces() {
        let p = phases("parser-like", params(30_000));
        let mut rt = DbiRuntime::new(&p, CostModel::default());
        rt.run(&mut NullSink, u64::MAX);
        assert!(
            rt.traces().len() >= 6,
            "many lukewarm loops: {}",
            rt.traces().len()
        );
    }

    #[test]
    fn miss_ratio_is_low_but_nonzero() {
        let p = phases("tw", params(50_000));
        let r = p4_l2_miss_ratio(&p);
        assert!(r < 0.2, "phase working sets are smallish: {r}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_variants() {
        let _ = phases(
            "bad",
            PhasesParams {
                sentences: 1,
                variants: 0,
                slots: 8,
                max_trip: 1,
            },
        );
    }
}
