//! Byte-by-byte block-copy kernel (`164.gzip`, `256.bzip2`-class).

use umi_ir::{Program, ProgramBuilder, Reg, Width};

/// Parameters of the copy kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyParams {
    /// Bytes per copy pass.
    pub bytes: usize,
    /// Copy passes.
    pub passes: usize,
    /// No-ops per byte (models the surrounding compression logic).
    pub compute_nops: usize,
}

/// Builds a byte-granularity `memcpy` loop. Its single load instruction
/// touches a new line only every 64 iterations, giving the paper's
/// `164.gzip` character: "one instruction causes more than 90% of the
/// cache misses. It performs a byte-by-byte memory copy and has a 2% miss
/// ratio" — high miss *share*, low miss *ratio*, which defeats
/// ratio-thresholded delinquency prediction exactly as Table 6 shows.
pub fn copy(name: &str, p: CopyParams) -> Program {
    assert!(p.bytes > 0 && p.passes > 0, "degenerate copy");
    let mut pb = ProgramBuilder::new();
    pb.name(name);
    let f = pb.begin_func("main");
    let src = pb.bss(p.bytes);
    let dst = pb.bss(p.bytes);

    let outer = pb.new_block();
    let inner = pb.new_block();
    let next = pb.new_block();
    let done = pb.new_block();

    pb.block(f.entry()).movi(Reg::R8, 0).jmp(outer);
    pb.block(outer)
        .movi(Reg::ECX, 0)
        .movi(Reg::ESI, src as i64)
        .movi(Reg::EDI, dst as i64)
        .jmp(inner);
    pb.block(inner)
        .load(Reg::EAX, Reg::ESI + (Reg::ECX, 1), Width::W1)
        .store(Reg::EDI + (Reg::ECX, 1), Reg::EAX, Width::W1)
        .nops(p.compute_nops)
        .addi(Reg::ECX, 1)
        .cmpi(Reg::ECX, p.bytes as i64)
        .br_lt(inner, next);
    pb.block(next)
        .addi(Reg::R8, 1)
        .cmpi(Reg::R8, p.passes as i64)
        .br_lt(outer, done);
    pb.block(done).ret();
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::run_to_end;
    use umi_cache::FullSimulator;
    use umi_vm::Vm;

    #[test]
    fn copies_every_byte() {
        let p = copy(
            "c",
            CopyParams {
                bytes: 4096,
                passes: 2,
                compute_nops: 0,
            },
        );
        let stats = run_to_end(&p);
        assert_eq!(stats.loads, 2 * 4096);
        assert_eq!(stats.stores, 2 * 4096);
    }

    #[test]
    fn single_load_owns_nearly_all_misses_at_low_ratio() {
        // 2 MB copied once: the load misses every 64 bytes (≈1.6% ratio)
        // yet accounts for ~half the misses (the store takes the rest).
        let p = copy(
            "gzip-like",
            CopyParams {
                bytes: 2 << 20,
                passes: 1,
                compute_nops: 0,
            },
        );
        let mut sim = FullSimulator::pentium4();
        Vm::new(&p).run(&mut sim, u64::MAX);
        let c = sim.delinquent_set(0.90);
        assert!(c.len() <= 2, "copy has at most two missing instructions");
        let top = sim
            .per_pc()
            .iter()
            .max_by_key(|(_, s)| s.load_misses)
            .map(|(pc, s)| (pc, *s))
            .expect("stats");
        let ratio = top.1.load_miss_ratio();
        assert!(
            ratio > 0.005 && ratio < 0.05,
            "low per-access ratio, got {ratio}"
        );
    }
}
