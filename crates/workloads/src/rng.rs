//! Deterministic table generation for workload data.
//!
//! Self-contained xoshiro256++ (seeded through splitmix64) — the build
//! environment has no registry access, so the previous `rand::SmallRng`
//! backend is replaced by the same public-domain algorithm it wrapped.

/// A deterministic random source seeded from a workload name, used to
/// build permutations and index tables so every workload is reproducible
/// bit for bit.
#[derive(Debug)]
pub struct TableRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TableRng {
    /// Creates a source seeded from `name` (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TableRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h;
        TableRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` (Lemire rejection, unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n as u64).collect();
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }

    /// `n` uniform values in `[0, bound)`.
    pub fn indices(&mut self, n: usize, bound: u64) -> Vec<u64> {
        (0..n).map(|_| self.below(bound)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TableRng::from_name("181.mcf");
        let mut b = TableRng::from_name("181.mcf");
        assert_eq!(a.indices(32, 1000), b.indices(32, 1000));
        let mut c = TableRng::from_name("179.art");
        assert_ne!(a.indices(32, 1000), c.indices(32, 1000));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = TableRng::from_name("perm");
        let p = r.permutation(256);
        let mut seen = vec![false; 256];
        for &x in &p {
            assert!(!seen[x as usize], "duplicate {x}");
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TableRng::from_name("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
