//! Deterministic table generation for workload data.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source seeded from a workload name, used to
/// build permutations and index tables so every workload is reproducible
/// bit for bit.
#[derive(Debug)]
pub struct TableRng {
    rng: SmallRng,
}

impl TableRng {
    /// Creates a source seeded from `name` (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TableRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TableRng { rng: SmallRng::seed_from_u64(h) }
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.rng.gen_range(0..bound)
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n as u64).collect();
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    }

    /// `n` uniform values in `[0, bound)`.
    pub fn indices(&mut self, n: usize, bound: u64) -> Vec<u64> {
        (0..n).map(|_| self.below(bound)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TableRng::from_name("181.mcf");
        let mut b = TableRng::from_name("181.mcf");
        assert_eq!(a.indices(32, 1000), b.indices(32, 1000));
        let mut c = TableRng::from_name("179.art");
        assert_ne!(a.indices(32, 1000), c.indices(32, 1000));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = TableRng::from_name("perm");
        let p = r.permutation(256);
        let mut seen = vec![false; 256];
        for &x in &p {
            assert!(!seen[x as usize], "duplicate {x}");
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TableRng::from_name("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
