//! The paper's "radical example" (§1.4): use one introspection run to
//! evaluate multiple what-if cache scenarios at once — here, "how would
//! this workload's profiled references behave under different L2 sizes?"
//!
//! ```sh
//! cargo run --release --example whatif [workload]
//! ```

use umi::cache::CacheConfig;
use umi::core::{classify_default, working_set, RefPattern, WhatIfAnalyzer};
use umi::core::{MiniSimulator, ProfileStore};
use umi::dbi::{CostModel, DbiRuntime};
use umi::ir::Pc;
use umi::vm::NullSink;
use umi::workloads::{build, Scale};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "179.art".to_string());
    let program = match build(&name, Scale::Test) {
        Some(p) => p,
        None => {
            eprintln!("unknown workload `{name}`");
            std::process::exit(1);
        }
    };

    // Drive the DBI by hand and capture raw profiles so the same stream
    // feeds the what-if scenarios, the pattern classifier and the
    // working-set estimator. (UmiRuntime automates this; here we use the
    // pieces directly.)
    let mut rt = DbiRuntime::new(&program, CostModel::default());
    let instrumentor = umi::core::Instrumentor::new(true, 256);
    let mut store = ProfileStore::new(8192, 256);
    let mut minisim = MiniSimulator::new(CacheConfig::pentium4_l2(), 2, None);
    let mut whatif = WhatIfAnalyzer::new();
    whatif
        .add_scenario("128KB/8-way", CacheConfig::with_capacity(128 << 10, 8, 64))
        .add_scenario("512KB/8-way (P4)", CacheConfig::pentium4_l2())
        .add_scenario("2MB/8-way", CacheConfig::with_capacity(2 << 20, 8, 64))
        .add_scenario("512KB/2-way", CacheConfig::with_capacity(512 << 10, 2, 64));

    let mut plans: std::collections::HashMap<_, umi::core::TraceInstrumentation> =
        Default::default();
    let mut all_profiles = Vec::new();
    let mut sink = NullSink;
    while !rt.finished() {
        let mut drained = Vec::new();
        let created = {
            let info = rt.step(&mut sink);
            if let Some(tid) = info.trace {
                if let Some(plan) = plans.get(&tid) {
                    if info.entered_trace {
                        if store.trigger(tid).is_some() {
                            drained = store.drain();
                        }
                        if store.is_registered(tid) && store.trigger(tid).is_none() {
                            store.begin_row(tid);
                        }
                    }
                    for a in info.accesses.iter().filter(|a| a.is_demand()) {
                        if let Some(op) = plan.op_of(a.pc) {
                            store.record(tid, op, a.addr, a.kind == umi::ir::AccessKind::Store);
                        }
                    }
                }
            }
            info.trace_created
        };
        if let Some(tid) = created {
            let plan = instrumentor.instrument(rt.program(), rt.traces().trace(tid));
            if plan.op_count() > 0 {
                store.register(tid, plan.ops.clone());
                plans.insert(tid, plan);
            }
        }
        if !drained.is_empty() {
            minisim.analyze(&drained, 0, |_| true);
            whatif.analyze(&drained);
            all_profiles.extend(drained);
        }
    }
    let rest = store.drain();
    minisim.analyze(&rest, 0, |_| true);
    whatif.analyze(&rest);
    all_profiles.extend(rest);

    println!("=== what-if scenarios for {name} (same profiled references) ===");
    for s in whatif.scenarios() {
        println!(
            "{:<22} miss ratio {:>6.2}%  ({} refs)",
            s.label,
            100.0 * s.miss_ratio(),
            s.stats().accesses
        );
    }
    if let Some(best) = whatif.best() {
        println!("best scenario: {}", best.label);
    }

    let ws = working_set(all_profiles.iter().map(|(_, p)| p));
    println!(
        "\nsampled working set: {} lines = {} KB, reuse factor {:.1}",
        ws.lines,
        ws.bytes >> 10,
        ws.reuse_factor()
    );

    println!("\nper-operation reference patterns:");
    let mut shown: std::collections::HashSet<Pc> = Default::default();
    for (_, profile) in &all_profiles {
        for (col, pc) in profile.ops.iter().enumerate() {
            if !shown.insert(*pc) {
                continue;
            }
            let column = profile.column(col as u16);
            if let Some(pattern) = classify_default(&column) {
                let tag = match pattern {
                    RefPattern::Constant => "constant",
                    RefPattern::Strided => "strided (prefetchable)",
                    RefPattern::IrregularLocal => "irregular, local",
                    RefPattern::IrregularWide => "irregular, wide (chase-like)",
                };
                println!("  {pc}  {tag}");
            }
        }
    }
}
