//! The paper's §8 scenario: use online introspection to drive a software
//! stride prefetcher, and race it against the hardware prefetcher.
//!
//! ```sh
//! cargo run --release --example software_prefetch
//! ```

use umi::core::{SamplingMode, UmiConfig};
use umi::hw::{Platform, PrefetchSetting};
use umi::prefetch::harness::{run_native, run_umi_prefetch};
use umi::workloads::{build, Scale};

fn main() {
    let names = ["ft", "179.art", "470.lbm", "181.mcf"];
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>14} {:>8}",
        "workload", "native cyc", "sw-pf cyc", "speedup", "miss reduction", "planned"
    );
    for name in names {
        let program = build(name, Scale::Test).expect("known workload");
        let platform = Platform::pentium4();
        // The paper's Figure 3 baseline: hardware prefetching disabled.
        let native = run_native(&program, platform.clone(), PrefetchSetting::Off);
        // Sampled introspection (scaled to test-size runs): profiling turns
        // itself off after each analysis, so the optimized run carries only
        // residual UMI overhead, as in the paper's online scenario.
        let mut config = UmiConfig::sampled();
        config.sampling = SamplingMode::Periodic {
            period_insns: 1_000,
        };
        config.frequency_threshold = 16;
        let (opt, _report, plan) =
            run_umi_prefetch(&program, config, platform, PrefetchSetting::Off, 32);
        let speedup = native.cycles as f64 / opt.cycles as f64;
        let miss_red = if native.counters.l2_misses == 0 {
            0.0
        } else {
            1.0 - opt.counters.l2_misses as f64 / native.counters.l2_misses as f64
        };
        println!(
            "{:<10} {:>12} {:>12} {:>9.2}x {:>13.1}% {:>8}",
            name,
            native.cycles,
            opt.cycles,
            speedup,
            100.0 * miss_red,
            plan.len(),
        );
    }
    println!("\n(ft: perfect 64-byte stride, the paper's 64% best case;");
    println!(" mcf: random pointer chase, delinquent but unprefetchable)");
}
