//! Quickstart: introspect one workload and print what UMI learned.
//!
//! ```sh
//! cargo run --release --example quickstart [workload]
//! ```

use umi::core::{SamplingMode, UmiConfig, UmiRuntime};
use umi::vm::NullSink;
use umi::workloads::{build, Scale};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "181.mcf".to_string());
    let program = match build(&name, Scale::Test) {
        Some(p) => p,
        None => {
            eprintln!("unknown workload `{name}`; try 181.mcf, 179.art, ft, em3d, ...");
            std::process::exit(1);
        }
    };

    println!("introspecting {name} ...");
    // Test-scale workloads retire only a few hundred thousand instructions,
    // so shrink the sampling period and frequency threshold proportionally
    // (the paper's 10 ms / 64 defaults assume minutes-long SPEC runs).
    let mut config = UmiConfig::sampled();
    config.sampling = SamplingMode::Periodic {
        period_insns: 1_000,
    };
    config.frequency_threshold = 16;
    let mut umi = UmiRuntime::new(&program, config);
    let report = umi.run(&mut NullSink, u64::MAX);

    println!("\n=== UMI report for {} ===", report.program_name);
    println!("instructions retired      {:>12}", report.vm_stats.insns);
    println!(
        "memory references         {:>12}",
        report.vm_stats.mem_refs()
    );
    println!(
        "traces instrumented       {:>12}",
        report.instrumented_traces
    );
    println!(
        "profiled operations       {:>12}  ({:.2}% of static memory ops)",
        report.profiled_ops,
        report.percent_profiled()
    );
    println!(
        "profiles collected        {:>12}",
        report.profiles_collected
    );
    println!(
        "analyzer invocations      {:>12}",
        report.analyzer_invocations
    );
    println!(
        "mini-simulated miss ratio {:>11.2}%",
        100.0 * report.umi_miss_ratio
    );
    println!("predicted delinquent loads: {}", report.predicted.len());
    let mut pcs: Vec<_> = report.predicted.iter().collect();
    pcs.sort();
    for pc in pcs {
        let s = report.per_pc.get(*pc);
        let stride = report
            .strides
            .get(pc)
            .map(|st| {
                format!(
                    "stride {:+} B (conf {:.0}%)",
                    st.stride,
                    100.0 * st.confidence
                )
            })
            .unwrap_or_else(|| "no stable stride".to_string());
        println!(
            "  {pc}  miss ratio {:>5.1}%  {stride}",
            100.0 * s.load_miss_ratio()
        );
    }
    println!(
        "\noverhead: {} DBI cycles + {} UMI cycles over {} base cycles",
        report.dbi_overhead_cycles, report.umi_overhead_cycles, report.vm_stats.insns
    );
}
