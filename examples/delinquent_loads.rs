//! Delinquent-load prediction versus full-simulation ground truth — a
//! miniature of the paper's Table 6 over a handful of workloads.
//!
//! ```sh
//! cargo run --release --example delinquent_loads
//! ```

use umi::cache::FullSimulator;
use umi::core::{PredictionQuality, UmiConfig, UmiRuntime};
use umi::vm::{NullSink, Vm};
use umi::workloads::{build, Scale};

fn main() {
    let names = ["181.mcf", "179.art", "em3d", "ft", "164.gzip", "252.eon"];
    println!(
        "{:<12} {:>10} {:>6} {:>6} {:>8} {:>10} {:>10}",
        "benchmark", "miss%", "|P|", "|C|", "|P∩C|", "recall", "false-pos"
    );
    for name in names {
        let program = build(name, Scale::Test).expect("known workload");

        // Ground truth: the Cachegrind-equivalent full simulation.
        let mut full = FullSimulator::pentium4();
        Vm::new(&program).run(&mut full, u64::MAX);
        let truth = full.delinquent_set(0.90);

        // Online prediction: UMI.
        let mut umi = UmiRuntime::new(&program, UmiConfig::no_sampling());
        let report = umi.run(&mut NullSink, u64::MAX);

        let q = PredictionQuality::compute(
            &report.predicted,
            &truth,
            full.per_pc(),
            program.static_loads(),
        );
        println!(
            "{:<12} {:>9.2}% {:>6} {:>6} {:>8} {:>9.1}% {:>9.1}%",
            name,
            100.0 * full.l2_miss_ratio(),
            q.p_size,
            q.c_size,
            q.intersection,
            100.0 * q.recall,
            100.0 * q.false_positive,
        );
    }
    println!("\n(compare the shape with Table 6 of the paper: high-miss codes");
    println!(" are predicted nearly perfectly, at the cost of a false-positive");
    println!(" ratio around 50% — the trade the paper's adaptive thresholds");
    println!(" accept; run `cargo run -p umi-bench --bin table6` for all 32)");
}
