//! Introspecting *your own* program: build code with the `umi-ir`
//! assembler, run it under UMI, and read instruction-level results —
//! the "works on any general-purpose program" claim, minus the x86.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use umi::core::{UmiConfig, UmiRuntime};
use umi::ir::{ProgramBuilder, Reg, Width};
use umi::vm::NullSink;

fn main() {
    // A program with two loops: a resident one (hits) and a streaming one
    // (misses). UMI should flag only the second loop's load.
    let mut pb = ProgramBuilder::new();
    pb.name("two-loops");
    let main = pb.begin_func("main");
    let hot_loop = pb.new_block();
    let bridge = pb.new_block();
    let cold_loop = pb.new_block();
    let done = pb.new_block();

    pb.block(main.entry())
        .alloc(Reg::ESI, 4096) // small, resident buffer
        .alloc(Reg::EDI, 8 << 20) // 8 MB streamed buffer
        .movi(Reg::ECX, 0)
        .jmp(hot_loop);
    pb.block(hot_loop)
        .mov(Reg::EAX, Reg::ECX)
        .and(Reg::EAX, 511)
        .load(Reg::EBX, Reg::ESI + (Reg::EAX, 8), Width::W8)
        .addi(Reg::ECX, 1)
        .cmpi(Reg::ECX, 200_000)
        .br_lt(hot_loop, bridge);
    pb.block(bridge).movi(Reg::ECX, 0).jmp(cold_loop);
    pb.block(cold_loop)
        .load(Reg::EBX, Reg::EDI + (Reg::ECX, 8), Width::W8)
        .addi(Reg::ECX, 1)
        .cmpi(Reg::ECX, 1 << 20)
        .br_lt(cold_loop, done);
    pb.block(done).ret();
    let program = pb.finish();

    let streaming_pc = program.block(cold_loop).insn_pc(0);
    let resident_pc = program.block(hot_loop).insn_pc(2);

    let mut umi = UmiRuntime::new(&program, UmiConfig::no_sampling());
    let report = umi.run(&mut NullSink, u64::MAX);

    println!("predicted delinquent loads: {}", report.predicted.len());
    println!(
        "streaming load {streaming_pc}: predicted = {}, mini-sim miss ratio {:.1}%",
        report.predicted.contains(&streaming_pc),
        100.0 * report.per_pc.get(streaming_pc).load_miss_ratio()
    );
    println!(
        "resident  load {resident_pc}: predicted = {}, mini-sim miss ratio {:.1}%",
        report.predicted.contains(&resident_pc),
        100.0 * report.per_pc.get(resident_pc).load_miss_ratio()
    );
    assert!(report.predicted.contains(&streaming_pc));
    assert!(!report.predicted.contains(&resident_pc));
    println!("\nUMI separated the two loops correctly.");
}
