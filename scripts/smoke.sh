#!/bin/sh
# Smoke test: build + tier-1 tests, then run eight representative
# harnesses at CI scale and require byte-identical output against the
# golden files — with the parallel engine on (UMI_JOBS=2), so any
# nondeterminism in the fan-out shows up as a diff. cache_sink doubles
# as a correctness gate: it asserts sink agreement and the sampled-mode
# error bound before printing.
#
# umi_lint is both a harness and a gate: it exits non-zero on any
# Error-severity static diagnostic or when static-vs-dynamic delinquency
# agreement drops below its bar, which aborts this script before the
# golden comparison.
#
# Run from the repository root: scripts/smoke.sh
set -eu

cargo build --release --workspace
cargo test -q

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for bin in table6 table4 fig3 table_static umi_lint cache_sink table_profile vm_dispatch; do
    UMI_SCALE=test UMI_JOBS=2 ./target/release/$bin > "$tmp/$bin.txt"
    if ! diff -u "results/golden/$bin.txt" "$tmp/$bin.txt"; then
        echo "smoke: $bin output differs from results/golden/$bin.txt" >&2
        exit 1
    fi
    echo "smoke: $bin matches golden output"
done

echo "smoke: OK"
