#!/bin/sh
# Smoke test: build + tier-1 tests, then run the representative
# harnesses at CI scale and require byte-identical output against the
# golden files — with the parallel engine on (UMI_JOBS=2), so any
# nondeterminism in the fan-out shows up as a diff. cache_sink doubles
# as a correctness gate: it asserts sink agreement and the sampled-mode
# error bound before printing.
#
# umi_lint is both a harness and a gate: it exits non-zero on any
# Error-severity static diagnostic or when static-vs-dynamic delinquency
# agreement drops below its bar, which aborts this script before the
# golden comparison. table_absint likewise exits non-zero when exact
# simulation contradicts any must-analysis verdict, and table_staticplan
# when any composed miss-count interval is escaped (the soundness gates).
#
# Run from the repository root: scripts/smoke.sh
set -eu

cargo build --release --workspace
cargo test -q

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

harnesses="table6 table4 fig3 table_static umi_lint table_absint table_staticplan cache_sink table_profile vm_dispatch"

for bin in $harnesses; do
    UMI_SCALE=test UMI_JOBS=2 ./target/release/$bin > "$tmp/$bin.txt"
    if ! diff -u "results/golden/$bin.txt" "$tmp/$bin.txt"; then
        echo "smoke: $bin output differs from results/golden/$bin.txt" >&2
        exit 1
    fi
    echo "smoke: $bin matches golden output"
done

# Golden coverage: every file under results/golden/ must have been
# diffed above. A golden nobody compares against is a gate that silently
# stopped gating (the harness-list drift PR 9 had to repair by hand).
for golden in results/golden/*.txt; do
    bin=$(basename "$golden" .txt)
    case " $harnesses " in
        *" $bin "*) ;;
        *)
            echo "smoke: $golden was never diffed (add $bin to the harness list)" >&2
            exit 1
            ;;
    esac
done
echo "smoke: all $(ls results/golden/*.txt | wc -l | tr -d ' ') goldens were diffed"

# Trace cache: run one golden harness twice against the same
# UMI_TRACE_DIR — the cold pass captures every workload's execution
# trace to disk, the warm pass replays from it. Both must still be
# byte-identical to the golden (the cache can only change wall-clock,
# never output), and the cold/warm timings + encoding density land in
# results/BENCH_pipeline.json via trace_stat.
tdir="$tmp/traces"
t0=$(date +%s.%N)
UMI_SCALE=test UMI_JOBS=1 UMI_TRACE_DIR="$tdir" ./target/release/table6 > "$tmp/table6.cold.txt"
t1=$(date +%s.%N)
UMI_SCALE=test UMI_JOBS=1 UMI_TRACE_DIR="$tdir" ./target/release/table6 > "$tmp/table6.warm.txt"
t2=$(date +%s.%N)
for pass in cold warm; do
    if ! diff -u "results/golden/table6.txt" "$tmp/table6.$pass.txt"; then
        echo "smoke: table6 $pass-cache output differs from golden" >&2
        exit 1
    fi
done
cold=$(awk "BEGIN{printf \"%.3f\", $t1 - $t0}")
warm=$(awk "BEGIN{printf \"%.3f\", $t2 - $t1}")
./target/release/trace_stat "$tdir" "$cold" "$warm"
echo "smoke: table6 byte-identical cold and warm (capture ${cold}s, replay ${warm}s)"

echo "smoke: OK"
