//! # umi — Ubiquitous Memory Introspection, reproduced
//!
//! A full reproduction of *Ubiquitous Memory Introspection* (Zhao, Rabbah,
//! Amarasinghe, Rudolph, Wong — CGO 2007) as a Rust workspace. This crate
//! is the facade: it re-exports every subsystem under one roof so examples
//! and downstream users can depend on a single crate.
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`geom`] | `umi-geom` | shared cache-geometry types |
//! | [`ir`] | `umi-ir` | virtual x86-flavoured ISA |
//! | [`analyze`] | `umi-analyze` | IR verifier + static CFG/stride analysis |
//! | [`vm`] | `umi-vm` | block-stepping interpreter |
//! | [`cache`] | `umi-cache` | cache simulation + Cachegrind-equivalent |
//! | [`hw`] | `umi-hw` | Pentium 4 / AMD K7 machine models |
//! | [`dbi`] | `umi-dbi` | DynamoRIO-like runtime code manipulation |
//! | [`core`] | `umi-core` | the paper's contribution: UMI itself |
//! | [`workloads`] | `umi-workloads` | SPEC/Olden-like synthetic suite |
//! | [`prefetch`] | `umi-prefetch` | §8 software stride prefetcher |
//!
//! # Quickstart
//!
//! ```
//! use umi::core::{UmiConfig, UmiRuntime};
//! use umi::vm::NullSink;
//! use umi::workloads::{build, Scale};
//!
//! let program = build("181.mcf", Scale::Test).expect("known workload");
//! let mut umi = UmiRuntime::new(&program, UmiConfig::no_sampling());
//! let report = umi.run(&mut NullSink, u64::MAX);
//! assert!(!report.predicted.is_empty(), "mcf has delinquent loads");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use umi_analyze as analyze;
pub use umi_cache as cache;
pub use umi_core as core;
pub use umi_dbi as dbi;
pub use umi_geom as geom;
pub use umi_hw as hw;
pub use umi_ir as ir;
pub use umi_prefetch as prefetch;
pub use umi_vm as vm;
pub use umi_workloads as workloads;
