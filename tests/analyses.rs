//! Integration tests for the secondary analyses: what-if scenarios,
//! reference-pattern classification, and working-set estimation, driven by
//! real workload profiles.

use umi::cache::CacheConfig;
use umi::core::{
    classify_default, working_set, Instrumentor, MiniSimulator, ProfileStore, RefPattern,
    WhatIfAnalyzer,
};
use umi::dbi::{CostModel, DbiRuntime};
use umi::ir::AccessKind;
use umi::vm::NullSink;
use umi::workloads::{build, Scale};

/// Collects raw address profiles for a workload by driving the DBI
/// directly with always-on instrumentation.
fn collect_profiles(name: &str) -> Vec<(umi::dbi::TraceId, umi::core::AddressProfile)> {
    let program = build(name, Scale::Test).expect("workload");
    let mut rt = DbiRuntime::new(&program, CostModel::free());
    let instrumentor = Instrumentor::new(true, 256);
    let mut store = ProfileStore::new(1 << 14, 256);
    let mut plans: std::collections::HashMap<_, umi::core::TraceInstrumentation> =
        Default::default();
    let mut out = Vec::new();
    let mut sink = NullSink;
    while !rt.finished() {
        let created = {
            let info = rt.step(&mut sink);
            if let Some(tid) = info.trace {
                if let Some(plan) = plans.get(&tid) {
                    if info.entered_trace {
                        if store.trigger(tid).is_some() {
                            out.extend(store.drain());
                        }
                        store.begin_row(tid);
                    }
                    for a in info.accesses.iter().filter(|a| a.is_demand()) {
                        if let Some(op) = plan.op_of(a.pc) {
                            store.record(tid, op, a.addr, a.kind == AccessKind::Store);
                        }
                    }
                }
            }
            info.trace_created
        };
        if let Some(tid) = created {
            let plan = instrumentor.instrument(rt.program(), rt.traces().trace(tid));
            if plan.op_count() > 0 {
                store.register(tid, plan.ops.clone());
                plans.insert(tid, plan);
            }
        }
    }
    out.extend(store.drain());
    out
}

#[test]
fn whatif_ranks_cache_sizes_sensibly_for_streams() {
    // art's footprint (4 MB) defeats every scenario equally except one
    // big enough to hold it.
    let profiles = collect_profiles("179.art");
    let mut wi = WhatIfAnalyzer::new();
    wi.add_scenario("64KB", CacheConfig::with_capacity(64 << 10, 8, 64));
    wi.add_scenario("8MB", CacheConfig::with_capacity(8 << 20, 8, 64));
    wi.analyze(&profiles);
    let best = wi.best().expect("fed scenarios");
    assert_eq!(best.label, "8MB");
    assert!(wi.scenarios()[0].miss_ratio() > best.miss_ratio());
}

#[test]
fn whatif_is_indifferent_for_resident_workloads() {
    // eon fits everywhere beyond its compulsory footprint: scenario ratios
    // must be close to each other.
    let profiles = collect_profiles("252.eon");
    let mut wi = WhatIfAnalyzer::new();
    wi.add_scenario("256KB", CacheConfig::with_capacity(256 << 10, 8, 64));
    wi.add_scenario("4MB", CacheConfig::with_capacity(4 << 20, 8, 64));
    wi.analyze(&profiles);
    let [a, b] = wi.scenarios() else {
        panic!("two scenarios")
    };
    assert!((a.miss_ratio() - b.miss_ratio()).abs() < 0.05);
}

#[test]
fn patterns_separate_stream_from_chase() {
    // The ft stream must classify one op as strided; the mcf chase must
    // classify its chase op as wide-irregular.
    let stream_profiles = collect_profiles("ft");
    let mut found_strided = false;
    for (_, p) in &stream_profiles {
        for (col, _) in p.ops.iter().enumerate() {
            if classify_default(&p.column(col as u16)) == Some(RefPattern::Strided) {
                found_strided = true;
            }
        }
    }
    assert!(found_strided, "ft has a perfectly strided op");

    let chase_profiles = collect_profiles("181.mcf");
    let mut found_wide = false;
    for (_, p) in &chase_profiles {
        for (col, _) in p.ops.iter().enumerate() {
            if classify_default(&p.column(col as u16)) == Some(RefPattern::IrregularWide) {
                found_wide = true;
            }
        }
    }
    assert!(found_wide, "mcf's chase is wide-irregular");
}

#[test]
fn working_set_orders_workloads_by_footprint() {
    let small = working_set(collect_profiles("252.eon").iter().map(|(_, p)| p));
    let large = working_set(collect_profiles("179.art").iter().map(|(_, p)| p));
    assert!(
        large.bytes > small.bytes * 4,
        "art's sampled working set ({} B) must dwarf eon's ({} B)",
        large.bytes,
        small.bytes
    );
    assert!(small.reuse_factor() > large.reuse_factor());
}

#[test]
fn minisim_and_whatif_agree_on_identical_geometry() {
    // Feeding the same profiles to the production mini-simulator (no
    // warm-up, no compulsory tuning, no L1 filter) and a what-if scenario
    // with the same geometry must produce identical hit/miss sequences.
    let profiles = collect_profiles("181.mcf");
    let mut sim = MiniSimulator::new(CacheConfig::pentium4_l2(), 0, None);
    sim.set_exclude_compulsory(false);
    // Neutralize the accounting filter with a 1-line cache that only
    // filters immediate same-line repeats... which what-if doesn't model;
    // so instead compare total simulated references only.
    let r = sim.analyze(&profiles, 0, |_| true);
    let mut wi = WhatIfAnalyzer::new();
    wi.add_scenario("p4", CacheConfig::pentium4_l2());
    wi.analyze(&profiles);
    assert_eq!(wi.scenarios()[0].stats().accesses, r.refs_simulated);
}
