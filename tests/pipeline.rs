//! Cross-crate integration tests: the full UMI pipeline over real
//! workloads, checked against the Cachegrind-equivalent ground truth and
//! the simulated hardware platforms.

use umi::cache::FullSimulator;
use umi::core::{PredictionQuality, UmiConfig, UmiRuntime};
use umi::dbi::{CostModel, DbiRuntime};
use umi::hw::{Platform, PrefetchSetting};
use umi::prefetch::harness::{run_dbi, run_native, run_umi, run_umi_prefetch};
use umi::vm::{NullSink, Vm};
use umi::workloads::{build, Scale};

/// The DBI and UMI layers must be architecturally invisible: same
/// instruction counts, same memory traffic, same register results.
#[test]
fn introspection_is_transparent_across_the_stack() {
    for name in ["181.mcf", "176.gcc", "171.swim", "164.gzip"] {
        let program = build(name, Scale::Test).expect("workload");
        let mut vm = Vm::new(&program);
        vm.run(&mut NullSink, u64::MAX);
        let native = vm.stats();

        let mut dbi = DbiRuntime::new(&program, CostModel::default());
        let dbi_stats = dbi.run(&mut NullSink, u64::MAX);
        assert_eq!(native, dbi_stats, "{name}: DBI changed architecture");

        let mut umi = UmiRuntime::new(&program, UmiConfig::no_sampling());
        let report = umi.run(&mut NullSink, u64::MAX);
        assert_eq!(native, report.vm_stats, "{name}: UMI changed architecture");
    }
}

/// On memory-intensive workloads, UMI's predictions must essentially match
/// the full simulation's delinquent set (the paper reports 88% recall for
/// benchmarks with ≥1% miss ratio).
#[test]
fn high_miss_workloads_are_predicted_well() {
    for name in ["181.mcf", "179.art", "em3d", "ft"] {
        let program = build(name, Scale::Test).expect("workload");
        let mut full = FullSimulator::pentium4();
        Vm::new(&program).run(&mut full, u64::MAX);
        assert!(
            full.l2_miss_ratio() > 0.01,
            "{name} should be memory-intensive"
        );
        let truth = full.delinquent_set(0.90);
        assert!(!truth.is_empty());

        let mut umi = UmiRuntime::new(&program, UmiConfig::no_sampling());
        let report = umi.run(&mut NullSink, u64::MAX);
        let q = PredictionQuality::compute(
            &report.predicted,
            &truth,
            full.per_pc(),
            program.static_loads(),
        );
        assert!(q.recall >= 0.5, "{name}: recall {} too low", q.recall);
        assert!(
            q.p_miss_coverage >= 0.5,
            "{name}: predicted loads cover only {} of misses",
            q.p_miss_coverage
        );
    }
}

/// Cache-resident workloads produce some false positives (the paper's
/// Table 6 averages 58.8% false positives for low-miss benchmarks), but
/// the predicted set must stay a small fraction of the static loads.
#[test]
fn low_miss_workloads_predict_little() {
    for name in ["252.eon", "186.crafty"] {
        let program = build(name, Scale::Test).expect("workload");
        let mut umi = UmiRuntime::new(&program, UmiConfig::no_sampling());
        let report = umi.run(&mut NullSink, u64::MAX);
        assert!(
            report.predicted.len() <= program.static_loads() / 2,
            "{name}: {} predictions out of {} static loads",
            report.predicted.len(),
            program.static_loads()
        );
    }
}

/// The overhead ordering of Figure 2: native ≤ DBI ≤ UMI, and sampling
/// cheaper than always-bursty instrumentation.
#[test]
fn overhead_ordering_matches_figure2() {
    let program = build("179.art", Scale::Test).expect("art");
    let platform = Platform::pentium4();
    let native = run_native(&program, platform.clone(), PrefetchSetting::Full);
    let (dbi, _) = run_dbi(&program, platform.clone(), PrefetchSetting::Full);
    let (nosamp, _) = run_umi(
        &program,
        UmiConfig::no_sampling(),
        platform,
        PrefetchSetting::Full,
    );
    assert!(native.cycles <= dbi.cycles);
    assert!(dbi.cycles <= nosamp.cycles);
}

/// §8 end to end: a strided delinquent load gets prefetched and both the
/// miss count and the running time improve; on the K7 (no HW prefetch)
/// software prefetching is the only prefetching there is.
#[test]
fn software_prefetching_works_end_to_end() {
    let program = build("ft", Scale::Test).expect("ft");
    for platform in [Platform::pentium4(), Platform::k7()] {
        let native = run_native(&program, platform.clone(), PrefetchSetting::Off);
        let (opt, report, plan) = run_umi_prefetch(
            &program,
            UmiConfig::no_sampling(),
            platform.clone(),
            PrefetchSetting::Off,
            32,
        );
        assert!(
            !report.predicted.is_empty(),
            "{}: nothing predicted",
            platform.name
        );
        assert_eq!(plan.len(), 1, "{}: exactly the stream load", platform.name);
        assert!(
            opt.counters.l2_misses < native.counters.l2_misses / 2,
            "{}: prefetch did not remove misses",
            platform.name
        );
        assert!(opt.cycles < native.cycles, "{}: no speedup", platform.name);
    }
}

/// The two platforms must behave like the paper's: the K7's L2 is half the
/// P4's, so L2-straddling workloads miss more on the K7.
#[test]
fn platform_geometries_differentiate() {
    // 300.twolf's table was sized between the two L2 capacities.
    let program = build("300.twolf", Scale::Test).expect("twolf");
    let p4 = run_native(&program, Platform::pentium4(), PrefetchSetting::Off);
    let k7 = run_native(&program, Platform::k7(), PrefetchSetting::Off);
    assert!(
        k7.counters.l2_miss_ratio() > p4.counters.l2_miss_ratio(),
        "K7 (256 KB) should miss more than P4 (512 KB): {} vs {}",
        k7.counters.l2_miss_ratio(),
        p4.counters.l2_miss_ratio()
    );
}

/// Prefetch-side-effect blindness (§6.2): UMI's mini-simulated miss ratio
/// is the same whether or not the hardware prefetchers run underneath.
#[test]
fn umi_ratios_ignore_hardware_prefetching() {
    let program = build("179.art", Scale::Test).expect("art");
    let (_, off) = run_umi(
        &program,
        UmiConfig::no_sampling(),
        Platform::pentium4(),
        PrefetchSetting::Off,
    );
    let (_, on) = run_umi(
        &program,
        UmiConfig::no_sampling(),
        Platform::pentium4(),
        PrefetchSetting::Full,
    );
    assert_eq!(off.umi_miss_ratio, on.umi_miss_ratio);
    assert_eq!(off.predicted, on.predicted);
}

/// The hardware prefetcher lowers measured miss ratios (the reason the
/// paper's prefetch-on correlations drop).
#[test]
fn hardware_prefetch_lowers_hw_ratios() {
    let program = build("179.art", Scale::Test).expect("art");
    let off = run_native(&program, Platform::pentium4(), PrefetchSetting::Off);
    let on = run_native(&program, Platform::pentium4(), PrefetchSetting::Full);
    assert!(on.counters.l2_misses < off.counters.l2_misses);
}
