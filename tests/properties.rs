//! Property-based tests (proptest) on the core data structures and
//! invariants: caches, memory, profiles, delinquent sets, correlation,
//! and stride detection.

use proptest::prelude::*;
use umi::cache::{delinquent_set, CacheConfig, PcMissStats, PerPcStats, SetAssocCache};
use umi::core::{detect_stride, pearson, ProfileStore};
use umi::dbi::TraceId;
use umi::ir::Pc;
use umi::vm::Memory;

proptest! {
    /// A line just accessed is always resident (probe) and hits on
    /// re-access, for any geometry.
    #[test]
    fn cache_hit_after_access(
        sets_log in 0u32..8,
        ways in 1usize..8,
        addrs in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let cfg = CacheConfig::new(1 << sets_log, ways, 64);
        let mut c = SetAssocCache::new(cfg);
        for a in addrs {
            c.access(a);
            prop_assert!(c.probe(a), "just-accessed line not resident");
            prop_assert!(c.access(a).hit, "immediate re-access missed");
        }
    }

    /// Resident lines never exceed capacity, and stats stay consistent.
    #[test]
    fn cache_capacity_and_stats_invariants(
        addrs in proptest::collection::vec(0u64..100_000, 1..500),
    ) {
        let cfg = CacheConfig::new(8, 2, 64);
        let mut c = SetAssocCache::new(cfg);
        for a in &addrs {
            c.access(*a);
            prop_assert!(c.resident_lines() <= 16);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, 2 * addrs.len() as u64 - addrs.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        prop_assert!((0.0..=1.0).contains(&s.miss_ratio()));
    }

    /// Under LRU, an eviction never removes the most recently used line.
    #[test]
    fn lru_never_evicts_most_recent(
        tags in proptest::collection::vec(0u64..64, 2..300),
    ) {
        let cfg = CacheConfig::new(1, 4, 64); // one set: pure LRU stack
        let mut c = SetAssocCache::new(cfg);
        let mut last: Option<u64> = None;
        for t in tags {
            let addr = t * 64;
            let out = c.access(addr);
            if let (Some(prev), Some(evicted)) = (last, out.evicted) {
                prop_assert_ne!(evicted, prev * 64, "evicted the MRU line");
            }
            last = Some(t);
        }
    }

    /// Memory reads return exactly what was last written, at every width.
    #[test]
    fn memory_read_after_write(
        addr in 0u64..0x10_0000,
        value: u64,
        width_sel in 0usize..4,
    ) {
        let width = [1u8, 2, 4, 8][width_sel];
        let mut m = Memory::new();
        m.write(addr, width, value);
        let mask = if width == 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
        prop_assert_eq!(m.read(addr, width), value & mask);
    }

    /// Writes never disturb bytes outside their window.
    #[test]
    fn memory_writes_are_contained(
        addr in 8u64..0x1_0000,
        value: u64,
    ) {
        let mut m = Memory::new();
        m.write(addr - 8, 8, 0x1111_1111_1111_1111);
        m.write(addr + 4, 4, 0x2222_2222);
        m.write(addr, 4, value);
        prop_assert_eq!(m.read(addr - 8, 8), 0x1111_1111_1111_1111);
        prop_assert_eq!(m.read(addr + 4, 4), 0x2222_2222);
    }

    /// The delinquent set covers at least the target and is minimal: the
    /// last member is necessary.
    #[test]
    fn delinquent_set_covers_and_is_minimal(
        misses in proptest::collection::vec(0u64..1000, 1..50),
        x in 0.05f64..1.0,
    ) {
        let stats: PerPcStats = misses
            .iter()
            .enumerate()
            .map(|(i, m)| (Pc(i as u64), PcMissStats {
                load_accesses: m + 1,
                load_misses: *m,
                ..Default::default()
            }))
            .collect();
        let c = delinquent_set(&stats, x);
        let total: u64 = misses.iter().sum();
        if total > 0 {
            prop_assert!(c.coverage() >= x - 1e-9, "coverage {} < {}", c.coverage(), x);
            // Minimality: dropping the smallest member goes below target.
            let smallest: u64 = c
                .pcs
                .iter()
                .map(|pc| stats.get(*pc).load_misses)
                .min()
                .unwrap_or(0);
            let without = (c.covered_misses - smallest) as f64 / total as f64;
            prop_assert!(without < x, "set is not minimal");
        } else {
            prop_assert!(c.is_empty());
        }
    }

    /// Pearson correlation is bounded, symmetric, and exactly 1 against a
    /// positive affine image of itself.
    #[test]
    fn pearson_properties(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..40),
        a in 0.1f64..100.0,
        b in -100.0f64..100.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        prop_assert_eq!(pearson(&xs, &ys), pearson(&ys, &xs));
        let distinct = xs.windows(2).any(|w| w[0] != w[1]);
        if distinct {
            prop_assert!((r - 1.0).abs() < 1e-6, "affine image must correlate at 1, got {r}");
        }
    }

    /// A pure arithmetic sequence always yields its stride at confidence 1.
    #[test]
    fn stride_detection_on_pure_sequences(
        base in 0u64..1_000_000,
        stride in prop_oneof![1i64..4096, -4096i64..-1],
        len in 5usize..64,
    ) {
        let col: Vec<u64> = (0..len)
            .map(|i| {
                0x10_0000_0000u64
                    .wrapping_add(base)
                    .wrapping_add((stride * i as i64) as u64)
            })
            .collect();
        let info = detect_stride(&col, 4, 0.5).expect("pure stride");
        prop_assert_eq!(info.stride, stride);
        prop_assert_eq!(info.confidence, 1.0);
    }

    /// Profile stores never exceed their row capacity and drain resets
    /// the trace-profile usage.
    #[test]
    fn profile_store_capacity(
        rows in 1usize..40,
        cap in 1usize..10,
    ) {
        let mut s = ProfileStore::new(1 << 20, cap);
        let t = TraceId(0);
        s.register(t, vec![Pc(1)]);
        let mut began = 0;
        for _ in 0..rows {
            if s.trigger(t).is_some() {
                let drained = s.drain();
                prop_assert_eq!(drained.len(), 1);
                prop_assert!(drained[0].1.row_count() <= cap);
                prop_assert_eq!(s.trace_profile_usage(), 0);
            }
            s.begin_row(t);
            began += 1;
        }
        prop_assert_eq!(began, rows);
    }
}
