//! Property-based tests (umi-testkit randomized harness) on the core data
//! structures and invariants: caches, memory, profiles, delinquent sets,
//! correlation, and stride detection.

use umi::cache::{delinquent_set, CacheConfig, PcMissStats, PerPcStats, SetAssocCache};
use umi::core::{detect_stride, pearson, ProfileStore};
use umi::dbi::TraceId;
use umi::ir::Pc;
use umi::vm::Memory;
use umi_testkit::check;

/// A line just accessed is always resident (probe) and hits on
/// re-access, for any geometry.
#[test]
fn cache_hit_after_access() {
    check("cache_hit_after_access", 128, |rng| {
        let sets = 1usize << rng.below(8);
        let ways = 1 + rng.below(7) as usize;
        let cfg = CacheConfig::new(sets, ways, 64);
        let mut c = SetAssocCache::new(cfg);
        for a in rng.vec_below(1, 200, 1_000_000) {
            c.access(a);
            assert!(c.probe(a), "just-accessed line not resident");
            assert!(c.access(a).hit, "immediate re-access missed");
        }
    });
}

/// Resident lines never exceed capacity, and stats stay consistent.
#[test]
fn cache_capacity_and_stats_invariants() {
    check("cache_capacity_and_stats_invariants", 128, |rng| {
        let addrs = rng.vec_below(1, 500, 100_000);
        let cfg = CacheConfig::new(8, 2, 64);
        let mut c = SetAssocCache::new(cfg);
        for a in &addrs {
            c.access(*a);
            assert!(c.resident_lines() <= 16);
        }
        let s = c.stats();
        assert_eq!(s.accesses, addrs.len() as u64);
        assert!(s.misses <= s.accesses);
        assert!((0.0..=1.0).contains(&s.miss_ratio()));
    });
}

/// Under LRU, an eviction never removes the most recently used line.
#[test]
fn lru_never_evicts_most_recent() {
    check("lru_never_evicts_most_recent", 128, |rng| {
        let tags = rng.vec_below(2, 300, 64);
        let cfg = CacheConfig::new(1, 4, 64); // one set: pure LRU stack
        let mut c = SetAssocCache::new(cfg);
        let mut last: Option<u64> = None;
        for t in tags {
            let addr = t * 64;
            let out = c.access(addr);
            if let (Some(prev), Some(evicted)) = (last, out.evicted) {
                assert_ne!(evicted, prev * 64, "evicted the MRU line");
            }
            last = Some(t);
        }
    });
}

/// Memory reads return exactly what was last written, at every width.
#[test]
fn memory_read_after_write() {
    check("memory_read_after_write", 256, |rng| {
        let addr = rng.below(0x10_0000);
        let value = rng.range_u64(0, u64::MAX);
        let width = [1u8, 2, 4, 8][rng.below(4) as usize];
        let mut m = Memory::new();
        m.write(addr, width, value);
        let mask = if width == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * width)) - 1
        };
        assert_eq!(m.read(addr, width), value & mask);
    });
}

/// Writes never disturb bytes outside their window.
#[test]
fn memory_writes_are_contained() {
    check("memory_writes_are_contained", 256, |rng| {
        let addr = rng.range_u64(8, 0x1_0000);
        let value = rng.range_u64(0, u64::MAX);
        let mut m = Memory::new();
        m.write(addr - 8, 8, 0x1111_1111_1111_1111);
        m.write(addr + 4, 4, 0x2222_2222);
        m.write(addr, 4, value);
        assert_eq!(m.read(addr - 8, 8), 0x1111_1111_1111_1111);
        assert_eq!(m.read(addr + 4, 4), 0x2222_2222);
    });
}

/// The delinquent set covers at least the target and is minimal: the
/// last member is necessary.
#[test]
fn delinquent_set_covers_and_is_minimal() {
    check("delinquent_set_covers_and_is_minimal", 192, |rng| {
        let misses = rng.vec_below(1, 50, 1000);
        let x = rng.range_f64(0.05, 1.0);
        let stats: PerPcStats = misses
            .iter()
            .enumerate()
            .map(|(i, m)| {
                (
                    Pc(i as u64),
                    PcMissStats {
                        load_accesses: m + 1,
                        load_misses: *m,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let c = delinquent_set(&stats, x);
        let total: u64 = misses.iter().sum();
        if total > 0 {
            assert!(
                c.coverage() >= x - 1e-9,
                "coverage {} < {}",
                c.coverage(),
                x
            );
            // Minimality: dropping the smallest member goes below target.
            let smallest: u64 = c
                .pcs
                .iter()
                .map(|pc| stats.get(*pc).load_misses)
                .min()
                .unwrap_or(0);
            let without = (c.covered_misses - smallest) as f64 / total as f64;
            assert!(without < x, "set is not minimal");
        } else {
            assert!(c.is_empty());
        }
    });
}

/// Pearson correlation is bounded, symmetric, and exactly 1 against a
/// positive affine image of itself.
#[test]
fn pearson_properties() {
    check("pearson_properties", 192, |rng| {
        let n = rng.range_u64(2, 40) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let a = rng.range_f64(0.1, 100.0);
        let b = rng.range_f64(-100.0, 100.0);
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let r = pearson(&xs, &ys);
        assert!((-1.0..=1.0).contains(&r));
        assert_eq!(pearson(&xs, &ys).to_bits(), pearson(&ys, &xs).to_bits());
        let distinct = xs.windows(2).any(|w| w[0] != w[1]);
        if distinct {
            assert!(
                (r - 1.0).abs() < 1e-6,
                "affine image must correlate at 1, got {r}"
            );
        }
    });
}

/// A pure arithmetic sequence always yields its stride at confidence 1.
#[test]
fn stride_detection_on_pure_sequences() {
    check("stride_detection_on_pure_sequences", 256, |rng| {
        let base = rng.below(1_000_000);
        let stride = if rng.below(2) == 0 {
            rng.range_i64(1, 4095)
        } else {
            rng.range_i64(-4096, -1)
        };
        let len = rng.range_u64(5, 63) as usize;
        let col: Vec<u64> = (0..len)
            .map(|i| {
                0x10_0000_0000u64
                    .wrapping_add(base)
                    .wrapping_add((stride * i as i64) as u64)
            })
            .collect();
        let info = detect_stride(&col, 4, 0.5).expect("pure stride");
        assert_eq!(info.stride, stride);
        assert_eq!(info.confidence, 1.0);
    });
}

/// Profile stores never exceed their row capacity and drain resets
/// the trace-profile usage.
#[test]
fn profile_store_capacity() {
    check("profile_store_capacity", 192, |rng| {
        let rows = rng.range_u64(1, 39) as usize;
        let cap = rng.range_u64(1, 9) as usize;
        let mut s = ProfileStore::new(1 << 20, cap);
        let t = TraceId(0);
        s.register(t, vec![Pc(1)]);
        let mut began = 0;
        for _ in 0..rows {
            if s.trigger(t).is_some() {
                let drained = s.drain();
                assert_eq!(drained.len(), 1);
                assert!(drained[0].1.row_count() <= cap);
                assert_eq!(s.trace_profile_usage(), 0);
            }
            s.begin_row(t);
            began += 1;
        }
        assert_eq!(began, rows);
    });
}
